type event =
  | Start of { worker : int; task : int }
  | Steal of { worker : int; victim : int; task : int }
  | Finish of { worker : int; task : int; seconds : float }

type stats = {
  jobs : int;
  tasks : int;
  steals : int;
  busy : float;
  elapsed : float;
}

let speedup s = if s.elapsed > 1e-9 then s.busy /. s.elapsed else 1.0
let default_jobs () = Domain.recommended_domain_count ()

(* ---- per-worker deque ------------------------------------------------- *)

(* A mutex-protected slice of the task-index space.  The owner pops
   from the front (lo), thieves from the back (hi): the owner walks its
   block in index order while steals peel work off the far end, so the
   two ends only meet when the deque drains. *)
type deque = {
  lock : Mutex.t;
  slots : int array;
  mutable lo : int;
  mutable hi : int;  (* exclusive *)
}

let pop_front d =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then (
      let t = d.slots.(d.lo) in
      d.lo <- d.lo + 1;
      Some t)
    else None
  in
  Mutex.unlock d.lock;
  r

let pop_back d =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then (
      d.hi <- d.hi - 1;
      Some d.slots.(d.hi))
    else None
  in
  Mutex.unlock d.lock;
  r

(* ---- collector channel ------------------------------------------------ *)

(* Workers communicate with the collector exclusively through this
   queue; the collector is the only domain that ever runs a callback. *)
type 'b msg =
  | Msg_steal of { worker : int; victim : int; task : int }
  | Msg_start of { worker : int; task : int }
  | Msg_done of {
      worker : int;
      task : int;
      result : ('b, exn) result;
      seconds : float;
    }

type 'b channel = {
  ch_lock : Mutex.t;
  ch_cond : Condition.t;
  ch_q : 'b msg Queue.t;
}

let send ch msg =
  Mutex.lock ch.ch_lock;
  Queue.push msg ch.ch_q;
  Condition.signal ch.ch_cond;
  Mutex.unlock ch.ch_lock

let receive_batch ch into =
  Mutex.lock ch.ch_lock;
  while Queue.is_empty ch.ch_q do
    Condition.wait ch.ch_cond ch.ch_lock
  done;
  Queue.transfer ch.ch_q into;
  Mutex.unlock ch.ch_lock

(* ---- workers ---------------------------------------------------------- *)

let worker_loop ~jobs ~deques ~channel ~f ~tasks w =
  let next () =
    match pop_front deques.(w) with
    | Some t -> Some (t, None)
    | None ->
        let rec scan k =
          if k >= jobs then None
          else
            let v = (w + k) mod jobs in
            match pop_back deques.(v) with
            | Some t -> Some (t, Some v)
            | None -> scan (k + 1)
        in
        scan 1
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some (task, stolen_from) ->
        Option.iter
          (fun victim -> send channel (Msg_steal { worker = w; victim; task }))
          stolen_from;
        send channel (Msg_start { worker = w; task });
        let t0 = Unix.gettimeofday () in
        let result = try Ok (f tasks.(task)) with e -> Error e in
        let seconds = Unix.gettimeofday () -. t0 in
        send channel (Msg_done { worker = w; task; result; seconds });
        loop ()
  in
  loop ()

(* ---- sequential short-circuit ----------------------------------------- *)

let map_seq ~on_event ~on_result f tasks =
  let n = Array.length tasks in
  let t0 = Unix.gettimeofday () in
  let results =
    Array.mapi
      (fun i x ->
        on_event (Start { worker = 0; task = i });
        let ta = Unix.gettimeofday () in
        let v = f x in
        let seconds = Unix.gettimeofday () -. ta in
        on_event (Finish { worker = 0; task = i; seconds });
        on_result i v;
        v)
      tasks
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (results, { jobs = 1; tasks = n; steals = 0; busy = elapsed; elapsed })

(* ---- the pool --------------------------------------------------------- *)

let map ?jobs ?(on_event = fun _ -> ()) ?(on_result = fun _ _ -> ()) f tasks =
  let n = Array.length tasks in
  let jobs = min (match jobs with Some j -> j | None -> default_jobs ()) n in
  if jobs <= 1 then map_seq ~on_event ~on_result f tasks
  else begin
    let t0 = Unix.gettimeofday () in
    (* Block partition: worker w owns [w*n/jobs, (w+1)*n/jobs). *)
    let deques =
      Array.init jobs (fun w ->
          let lo = w * n / jobs and hi = (w + 1) * n / jobs in
          {
            lock = Mutex.create ();
            slots = Array.init (hi - lo) (fun i -> lo + i);
            lo = 0;
            hi = hi - lo;
          })
    in
    let channel =
      { ch_lock = Mutex.create (); ch_cond = Condition.create ();
        ch_q = Queue.create () }
    in
    let domains =
      Array.init jobs (fun w ->
          Domain.spawn (fun () ->
              worker_loop ~jobs ~deques ~channel ~f ~tasks w))
    in
    let results = Array.make n None in
    let errors = ref [] in
    let steals = ref 0 in
    let busy = ref 0.0 in
    let completed = ref 0 in
    let batch = Queue.create () in
    while !completed < n do
      receive_batch channel batch;
      Queue.iter
        (fun msg ->
          match msg with
          | Msg_steal { worker; victim; task } ->
              incr steals;
              on_event (Steal { worker; victim; task })
          | Msg_start { worker; task } -> on_event (Start { worker; task })
          | Msg_done { worker; task; result; seconds } -> (
              incr completed;
              busy := !busy +. seconds;
              on_event (Finish { worker; task; seconds });
              match result with
              | Ok v ->
                  results.(task) <- Some v;
                  on_result task v
              | Error e -> errors := (task, e) :: !errors))
        batch;
      Queue.clear batch
    done;
    Array.iter Domain.join domains;
    (match List.sort compare !errors with
    | (_, e) :: _ -> raise e
    | [] -> ());
    let results =
      Array.map
        (function Some v -> v | None -> assert false (* all tasks Ok *))
        results
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    (results, { jobs; tasks = n; steals = !steals; busy = !busy; elapsed })
  end
