(** Fixed-size domain pool with work-stealing over an indexed task set.

    The pool maps a pure function over an array of tasks using [jobs]
    worker domains plus the calling domain, which acts as the {e
    collector}: workers never touch shared experiment state, they only
    send messages (scheduling events and results) to the collector,
    which is the single domain that runs every callback.  That
    single-writer discipline is what lets callers checkpoint, log and
    aggregate without locks — and it is testable: every callback
    observes [Domain.self () = collector].

    {2 Determinism}

    Scheduling is nondeterministic (which worker runs which task, and
    in what order, depends on timing), but the {e result} is not:

    - each task is an isolated computation of its input only (the
      experiment harness fixes all seeds per spec), so a task's value
      does not depend on which domain ran it or when;
    - results are tagged with their task index and merged into the
      output array at that index, so the merged output is the array the
      sequential [Array.map] would have produced, for every [jobs].

    Only the {e arrival order} of [on_event] / [on_result] callbacks
    varies across runs; callers that need canonical order (checkpoint
    sets, derived tables) key on the task index the callbacks carry.

    {2 Work stealing}

    Tasks are block-partitioned across per-worker deques.  A worker
    pops its own deque from the front (preserving index locality) and,
    when empty, steals from the back of the first non-empty victim.
    Deques are mutex-protected — contention is one lock operation per
    task, negligible against tasks that each run a full engine. *)

type event =
  | Start of { worker : int; task : int }  (** worker began the task *)
  | Steal of { worker : int; victim : int; task : int }
      (** the task about to start was taken from [victim]'s deque *)
  | Finish of { worker : int; task : int; seconds : float }
      (** task completed after [seconds] of wall-clock work *)

type stats = {
  jobs : int;  (** worker domains actually used *)
  tasks : int;
  steals : int;
  busy : float;  (** summed wall-clock seconds spent inside tasks *)
  elapsed : float;  (** wall-clock seconds for the whole map *)
}

val speedup : stats -> float
(** [busy /. elapsed] — the effective parallelism achieved (1.0 when
    sequential, up to [jobs] under perfect scaling); 1.0 when [elapsed]
    is too small to measure. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map :
  ?jobs:int ->
  ?on_event:(event -> unit) ->
  ?on_result:(int -> 'b -> unit) ->
  ('a -> 'b) ->
  'a array ->
  'b array * stats
(** [map f tasks] computes [Array.map f tasks] on a pool of [jobs]
    worker domains (default {!default_jobs}; never more than the task
    count).  [on_event] and [on_result] run on the calling domain only,
    in completion-arrival order; [on_result i v] receives each task's
    index and value as it lands, before the call returns.

    [jobs <= 1] short-circuits to a plain sequential loop on the
    calling domain — no domain is spawned, events still fire (worker 0,
    no steals).

    If any task raises, the remaining tasks still run to completion,
    then the exception of the {e lowest-indexed} failing task is
    re-raised (deterministic, unlike first-in-time).  [on_result] is
    not called for failed tasks. *)
