module Json = Tpdbt_telemetry.Json
module Encode = Tpdbt_isa.Encode
module Disasm = Tpdbt_isa.Disasm

type entry = {
  id : string;
  case : int;
  guest_seed : int64;
  original_active : int;
  shrunk_active : int;
  divergences : Oracle.divergence list;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ -> () (* lost a race with a concurrent campaign *)
  end

let divergence_json (d : Oracle.divergence) =
  Json.obj
    [
      ("arm", Json.quote d.arm);
      ("kind", Json.quote d.kind);
      ("detail", Json.quote d.detail);
    ]

let entry_json e =
  Json.obj
    [
      ("id", Json.quote e.id);
      ("case", string_of_int e.case);
      (* int64 seeds travel as strings: they exceed the double-precision
         integer range JSON consumers assume *)
      ("guest_seed", Json.quote (Int64.to_string e.guest_seed));
      ("original_active", string_of_int e.original_active);
      ("shrunk_active", string_of_int e.shrunk_active);
      ("divergences", Json.arr (List.map divergence_json e.divergences));
    ]

let write_text path text =
  let oc = open_out path in
  output_string oc text;
  if String.length text > 0 && text.[String.length text - 1] <> '\n' then
    output_char oc '\n';
  close_out oc

let save ~dir e program =
  mkdir_p dir;
  let stem = Filename.concat dir e.id in
  let g32 = stem ^ ".g32" and asm = stem ^ ".s" and meta = stem ^ ".json" in
  Encode.write_file g32 program;
  write_text asm (Disasm.disassemble program);
  write_text meta (entry_json e);
  [ g32; asm; meta ]
