module Prng = Tpdbt_vm.Prng
module Instr = Tpdbt_isa.Instr
module Reg = Tpdbt_isa.Reg
module Program = Tpdbt_isa.Program

type params = { size : int; mem_words : int }

let default = { size = 48; mem_words = 1024 }

(* ---- emission ---------------------------------------------------------- *)

(* Shapes are emitted left to right with their layout decided up front,
   so every branch target is an absolute index computed before the
   instruction is emitted — except calls, whose subroutines live after
   the final halt and are patched once their addresses are known. *)
type emitter = {
  mutable rev : Instr.t list;
  mutable len : int;
  mutable call_fixups : (int * int) list;  (** instr index, subroutine id *)
}

let emit e i =
  e.rev <- i :: e.rev;
  e.len <- e.len + 1

(* ---- register choices -------------------------------------------------- *)

let pick_reg prng = Reg.of_int (Prng.below prng Reg.count)

(* A register outside [exclude] — loop counters and the like must not
   be clobbered by the body they control. *)
let rec pick_reg_excluding prng exclude =
  let r = pick_reg prng in
  if List.exists (Reg.equal r) exclude then pick_reg_excluding prng exclude
  else r

let binops =
  [|
    Instr.Add;
    Instr.Sub;
    Instr.Mul;
    Instr.And;
    Instr.Or;
    Instr.Xor;
    Instr.Shl;
    Instr.Shr;
  |]

let conds = [| Instr.Eq; Instr.Ne; Instr.Lt; Instr.Ge; Instr.Le; Instr.Gt |]
let pick_cond prng = conds.(Prng.below prng (Array.length conds))

(* ---- straight-line instructions ---------------------------------------- *)

(* One straight-line step (possibly a two-instruction address-setup +
   memory-op pair).  [exclude] regs are never written. *)
let straight e prng params ~exclude =
  let dst () = pick_reg_excluding prng exclude in
  match Prng.below prng 100 with
  | n when n < 22 ->
      (* immediate load; small values keep arithmetic interesting *)
      emit e (Instr.Movi (dst (), Prng.below prng 640 - 64))
  | n when n < 30 -> emit e (Instr.Mov (dst (), pick_reg prng))
  | n when n < 52 ->
      let op = binops.(Prng.below prng (Array.length binops)) in
      emit e (Instr.Binop (op, dst (), pick_reg prng, pick_reg prng))
  | n when n < 66 ->
      let op = binops.(Prng.below prng (Array.length binops)) in
      emit e (Instr.Binopi (op, dst (), pick_reg prng, Prng.below prng 64 + 1))
  | n when n < 80 ->
      (* safe memory pair: the base register is pinned to an in-range
         address immediately before the access *)
      let base = dst () in
      let addr = Prng.below prng (max 1 (params.mem_words - 64)) in
      emit e (Instr.Movi (base, addr));
      if Prng.below prng 2 = 0 then
        emit e (Instr.Load (dst (), base, Prng.below prng 64))
      else emit e (Instr.Store (pick_reg prng, base, Prng.below prng 64))
  | n when n < 86 -> emit e (Instr.Rnd (dst (), 1 + Prng.below prng 1000))
  | n when n < 92 -> emit e (Instr.Out (pick_reg prng))
  | n when n < 94 ->
      (* wild memory access: the base register holds whatever the run
         left in it, so this may fault — identically on both paths *)
      if Prng.below prng 2 = 0 then
        emit e (Instr.Load (dst (), pick_reg prng, Prng.below prng 64))
      else
        emit e (Instr.Store (pick_reg prng, pick_reg prng, Prng.below prng 64))
  | n when n < 96 ->
      (* division by a register value: traps when it is zero *)
      let op = if Prng.below prng 2 = 0 then Instr.Div else Instr.Rem in
      emit e (Instr.Binop (op, dst (), pick_reg prng, pick_reg prng))
  | n when n < 98 ->
      (* out-of-range rnd bound: must surface as the typed trap *)
      emit e (Instr.Rnd (dst (), Prng.below prng 3 - 2))
  | _ -> emit e Instr.Nop

let straight_run e prng params ~exclude count =
  for _ = 1 to count do
    straight e prng params ~exclude
  done

(* A straight-line body as a list, for shapes that must know a body's
   exact length before laying out branch targets around it — [straight]
   may emit two instructions per step (the address-setup pairs), so
   [count] alone does not determine the length. *)
let straight_list prng params ~exclude count =
  let e = { rev = []; len = 0; call_fixups = [] } in
  straight_run e prng params ~exclude count;
  List.rev e.rev

let emit_list e instrs = List.iter (emit e) instrs

(* ---- shapes ------------------------------------------------------------ *)

(* Forward conditional over two straight-line arms:
     br c r1 r2 -> else_part; then_part; jmp join; else_part; join: *)
let diamond e prng params =
  let then_part = straight_list prng params ~exclude:[] (1 + Prng.below prng 4) in
  let else_part = straight_list prng params ~exclude:[] (1 + Prng.below prng 4) in
  let else_start = e.len + 1 + List.length then_part + 1 in
  let join = else_start + List.length else_part in
  emit e (Instr.Br (pick_cond prng, pick_reg prng, pick_reg prng, else_start));
  emit_list e then_part;
  emit e (Instr.Jmp join);
  emit_list e else_part

(* Counted loop: a dedicated counter ticks down from a bounded trip
   count; the latch branches back while it is positive.  The body must
   not write the counter or the zero register, so the back edge is
   taken at most [trips] times no matter what the body computes.  With
   [flip], the body skips its first half while the counter is above
   the midpoint — a branch whose bias inverts halfway through the
   loop's lifetime (the phase-change stress). *)
let counted_loop e prng params =
  let rc = pick_reg prng in
  let rz = pick_reg_excluding prng [ rc ] in
  let trips = 1 + Prng.below prng 24 in
  let flip = Prng.below prng 3 = 0 in
  let rmid = if flip then pick_reg_excluding prng [ rc; rz ] else rz in
  let exclude = if flip then [ rc; rz; rmid ] else [ rc; rz ] in
  emit e (Instr.Movi (rz, 0));
  emit e (Instr.Movi (rc, trips));
  if flip then emit e (Instr.Movi (rmid, trips / 2));
  let head = e.len in
  (if flip then begin
     let part1 = straight_list prng params ~exclude (1 + Prng.below prng 3) in
     let part2 = straight_list prng params ~exclude (1 + Prng.below prng 3) in
     emit e (Instr.Br (Instr.Gt, rc, rmid, e.len + 1 + List.length part1));
     emit_list e part1;
     emit_list e part2
   end
   else begin
     let k = 1 + Prng.below prng 5 in
     straight_run e prng params ~exclude k
   end);
  emit e (Instr.Binopi (Instr.Sub, rc, rc, 1));
  emit e (Instr.Br (Instr.Gt, rc, rz, head))

(* Call into a straight-line subroutine that will be laid out after the
   final halt; the target is patched once subroutine addresses are
   known.  Subroutines never call, so the dynamic call depth is 1. *)
let call_shape e nsubs =
  let sub = e.len mod nsubs in
  e.call_fixups <- (e.len, sub) :: e.call_fixups;
  emit e (Instr.Call 0)

(* ---- top level --------------------------------------------------------- *)

let program prng params =
  let size = max 4 params.size in
  let e = { rev = []; len = 0; call_fixups = [] } in
  (* Decide the subroutine count up front so call sites can reference
     them before they exist. *)
  let nsubs = Prng.below prng (1 + 3) in
  while e.len < size do
    match Prng.below prng 100 with
    | n when n < 40 ->
        straight_run e prng params ~exclude:[] (1 + Prng.below prng 4)
    | n when n < 58 -> diamond e prng params
    | n when n < 88 -> counted_loop e prng params
    | _ -> if nsubs > 0 then call_shape e nsubs else diamond e prng params
  done;
  emit e Instr.Halt;
  (* Subroutine bodies after the halt, each ending in ret; record the
     entry pc of each. *)
  let sub_entry = Array.make (max 1 nsubs) 0 in
  for s = 0 to nsubs - 1 do
    sub_entry.(s) <- e.len;
    straight_run e prng params ~exclude:[] (2 + Prng.below prng 5);
    emit e Instr.Ret
  done;
  let code = Array.of_list (List.rev e.rev) in
  List.iter
    (fun (idx, sub) -> code.(idx) <- Instr.Call sub_entry.(sub))
    e.call_fixups;
  (* A few initial data bindings inside the memory window. *)
  let nbind = Prng.below prng 5 in
  let data_init =
    List.init nbind (fun _ ->
        (Prng.below prng params.mem_words, Prng.below prng 100_000 - 50_000))
  in
  Program.make ~data_init code

(* ---- adversarial strings for the JSON property tests ------------------- *)

let adversarial_string prng ~max_len =
  let len = Prng.below prng (max_len + 1) in
  String.init len (fun _ ->
      match Prng.below prng 8 with
      | 0 -> Char.chr (Prng.below prng 32) (* control chars, incl. \n \t *)
      | 1 -> (
          match Prng.below prng 4 with
          | 0 -> '"'
          | 1 -> '\\'
          | 2 -> '/'
          | _ -> '\x7f')
      | 2 -> Char.chr (0x80 + Prng.below prng 0x80) (* high bytes *)
      | _ -> Char.chr (32 + Prng.below prng 95))
