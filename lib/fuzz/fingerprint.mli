(** End-of-run architectural fingerprints.

    A fingerprint is everything a guest program's execution can
    observe or produce: the 16 registers, a hash of data memory, the
    output log, the instruction count and how the run ended.  Two
    executions of the same program with the same seed are equivalent
    iff their fingerprints are equal — this is the comparison the
    differential fuzzing oracle runs between the pure interpreter and
    every engine configuration, and the same machinery the planned
    superoptimizer miner ([tpdbt mine]) needs to verify candidate
    rewrite rules against the VM. *)

type t = {
  regs : int list;  (** r0..r15 *)
  mem_hash : int64;  (** FNV-1a 64 over every data-memory word *)
  outputs_hash : int64;  (** FNV-1a 64 over the [out] log, in order *)
  outputs : int;  (** number of values emitted *)
  steps : int;  (** guest instructions executed *)
  status : string;
      (** ["halted"], ["running"] (budget exhausted), or the rendered
          trap/error — trap identity is part of program behaviour *)
}

val status_of_run : (unit, Tpdbt_vm.Machine.trap) result -> halted:bool -> string
(** Status of a pure-interpreter {!Tpdbt_vm.Machine.run}. *)

val status_of_error : Tpdbt_dbt.Error.t option -> halted:bool -> string
(** Status of an engine run from [result.error]; a guest trap renders
    identically to the interpreter's, so matching runs compare equal. *)

val of_machine : status:string -> mem_words:int -> Tpdbt_vm.Machine.t -> t
(** Fingerprint the machine's current state.  [mem_words] must be the
    size the machine was created with. *)

val equal : t -> t -> bool

val diff : t -> t -> string list
(** Human-readable field-by-field differences, empty iff {!equal}. *)

val to_json : t -> string
