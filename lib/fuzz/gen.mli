(** Seeded random G32 program generator.

    Programs are built from a weighted mix of {e shapes} rather than
    raw instructions, so every generated image terminates by
    construction while still stressing the translator:

    - straight-line runs over the full opcode mix (arithmetic,
      moves, [rnd], [out], paired address-setup + load/store);
    - {e diamonds}: a forward conditional over a then/else pair of
      straight-line arms — region formation's bread and butter;
    - {e counted loops}: a dedicated counter register initialised to a
      bounded trip count and decremented by the latch, so the back
      edge is taken at most [trips] times; the loop body may carry an
      internal forward branch keyed on the counter crossing its
      midpoint, which flips the branch's bias mid-loop (the
      phase-change stress that separates INIP from AVEP);
    - {e calls}: main-line [call]s into straight-line subroutines laid
      out after the final [halt], each ending in [ret] — never nested,
      so the call depth is bounded;
    - low-weight {e wild} instructions: loads/stores through an
      arbitrary base register, division by a register, [rnd] with a
      non-positive bound — each may trap, and the trap itself must be
      bit-identical between the interpreter and the engine.

    All control flow is forward except counted-loop latches, so every
    program halts, traps, or falls off the end within a statically
    bounded number of steps (well under {!Oracle.max_steps} for any
    reasonable [size]).  The last instruction is always [halt] or
    [ret], never a branch or call, so {!Tpdbt_dbt.Block_map.build}
    accepts every generated image.

    Generation is driven entirely by the caller's
    {!Tpdbt_vm.Prng.t}: the same PRNG state always produces the same
    program, which is what makes fuzz campaigns replayable. *)

type params = {
  size : int;
      (** target main-line instruction count (the emitted program may
          run slightly longer: shapes are atomic, and subroutines are
          appended after the halt) *)
  mem_words : int;
      (** data-memory size the oracle will run with; safe address
          setups stay inside it *)
}

val default : params
(** 48 main-line instructions over 1024 memory words. *)

val program : Tpdbt_vm.Prng.t -> params -> Tpdbt_isa.Program.t
(** Draw one program.  Advances the PRNG; never raises. *)

val adversarial_string : Tpdbt_vm.Prng.t -> max_len:int -> string
(** Byte strings biased toward JSON-hostile content — quotes,
    backslashes, control characters, DEL, high bytes — for the
    [Json] emit/validate/parse round-trip property tests. *)
