(** Fuzz campaign driver: generate, judge, shrink, persist, summarise.

    A campaign is [budget] independent cases.  Case [i] derives its own
    PRNG seed from the campaign seed by a golden-ratio step (the
    SplitMix64 increment), draws the guest seed and then the program
    from that PRNG, and hands both to {!Oracle.check}.  Cases run on a
    {!Tpdbt_parallel.Pool} and results merge by case index, so the
    summary is byte-identical for every [jobs] value — and across
    repeated runs, because nothing in the pipeline reads a clock or an
    ambient RNG.

    Divergent cases are shrunk {e sequentially} (the shrinker re-runs
    the oracle with the case's own guest seed, so its verdicts are
    deterministic too) and, when a corpus directory is configured,
    persisted via {!Corpus.save}. *)

type config = {
  budget : int;  (** number of generated cases *)
  size : int;  (** {!Gen.params.size} for every case *)
  seed : int64;  (** campaign seed *)
  jobs : int option;  (** pool width; [None] = pool default *)
  corpus_dir : string option;  (** where reproducers land; [None] = keep in memory only *)
}

type failure = {
  case : int;
  guest_seed : int64;
  original : Tpdbt_isa.Program.t;
  shrunk : Tpdbt_isa.Program.t;
  original_active : int;
  shrunk_active : int;
  divergences : Oracle.divergence list;
  saved : string list;  (** corpus paths written (empty without a corpus dir) *)
}

type summary = {
  budget : int;
  seed : int64;
  skipped : int;  (** cases the oracle could not judge *)
  checks : int;  (** total comparisons across all cases *)
  failures : failure list;  (** in case order *)
}

val run :
  ?perturb:(arm:string -> Fingerprint.t -> Fingerprint.t) -> config -> summary
(** Run the campaign.  [perturb] is threaded to every {!Oracle.check}
    (including the shrinker's re-checks) — the bug-injection hook the
    self-test harness uses. *)

val summary_json : summary -> string
(** Deterministic JSON rendering: same campaign, same bytes. *)
