module Machine = Tpdbt_vm.Machine
module Engine = Tpdbt_dbt.Engine
module Block_map = Tpdbt_dbt.Block_map
module Error = Tpdbt_dbt.Error
module Snapshot = Tpdbt_dbt.Snapshot
module Perf_model = Tpdbt_dbt.Perf_model
module Code_cache = Tpdbt_dbt.Code_cache
module Sink = Tpdbt_telemetry.Sink
module Event = Tpdbt_telemetry.Event

type divergence = { arm : string; kind : string; detail : string }

type verdict = {
  divergences : divergence list;
  skipped : string option;
  checks : int;
}

let mem_words = 1024
let max_steps = 200_000

(* ---- the config matrix -------------------------------------------------- *)

type arm = { label : string; config : Engine.config }

(* Low threshold and pool trigger so even 50-instruction programs cross
   the optimisation phase; a tiny bounded cache so eviction actually
   happens at fuzz scale. *)
let arm_config ?cache_capacity ?cache_policy ?shadow_sample ?adaptive
    ?(trace = false) ~threshold () =
  let c =
    Engine.config ~pool_trigger:4 ?cache_capacity ?cache_policy ?shadow_sample
      ?adaptive ~threshold ()
  in
  { c with Engine.max_steps; trace_scheduling = trace }

let arms =
  [
    { label = "t0"; config = arm_config ~threshold:0 () };
    { label = "t2"; config = arm_config ~threshold:2 () };
    { label = "t8"; config = arm_config ~threshold:8 () };
    {
      label = "t2-lru";
      config =
        arm_config ~cache_capacity:32 ~cache_policy:Code_cache.Lru ~threshold:2
          ();
    };
    {
      label = "t2-flush";
      config =
        arm_config ~cache_capacity:32 ~cache_policy:Code_cache.Flush_all
          ~threshold:2 ();
    };
    {
      label = "t2-hot";
      config =
        arm_config ~cache_capacity:32 ~cache_policy:Code_cache.Hot_protect
          ~threshold:2 ();
    };
    { label = "t2-shadow"; config = arm_config ~shadow_sample:2 ~threshold:2 () };
    { label = "t2-adaptive"; config = arm_config ~adaptive:true ~threshold:2 () };
    { label = "t2-trace"; config = arm_config ~trace:true ~threshold:2 () };
  ]

let arm_labels = List.map (fun a -> a.label) arms

(* Arms whose cold-translation count must be identical: unbounded cache
   (no eviction/retranslation) and no region dissolution (adaptive mode
   re-instruments dissolved members). *)
let translation_invariant = [ "t0"; "t2"; "t8"; "t2-shadow"; "t2-trace" ]

(* ---- running one engine configuration ----------------------------------- *)

(* An exception escaping the engine is exactly what the fuzzer hunts:
   report it as data, never let it abort the campaign. *)
let run_engine config ~seed program =
  match
    let eng = Engine.create ~config ~mem_words ~seed program in
    let res = Engine.run eng in
    (res, Engine.machine eng)
  with
  | res, m -> Ok (res, m)
  | exception exn -> Error (Printexc.to_string exn)

let fingerprint_of (res : Engine.result) m =
  let status =
    Fingerprint.status_of_error res.Engine.error ~halted:(Machine.halted m)
  in
  Fingerprint.of_machine ~status ~mem_words m

(* ---- the check ---------------------------------------------------------- *)

let check ?(perturb = fun ~arm:_ fp -> fp) ~seed program =
  match Block_map.build_result program with
  | Error e -> { divergences = []; skipped = Some (Error.to_string e); checks = 0 }
  | Ok _ -> (
      (* Reference semantics: the pure interpreter. *)
      let ref_m = Machine.create ~mem_words ~seed program in
      let ref_result = Machine.run ~max_steps ref_m in
      let ref_halted = Machine.halted ref_m in
      match ref_result with
      | Ok () when not ref_halted ->
          (* Only degenerate shrink candidates get here (generated
             programs terminate by construction); the engine checks its
             budget at block granularity, so step counts could not be
             compared meaningfully anyway. *)
          {
            divergences = [];
            skipped = Some "reference run outlived the step budget";
            checks = 0;
          }
      | _ ->
          let reference =
            let status = Fingerprint.status_of_run ref_result ~halted:ref_halted in
            Fingerprint.of_machine ~status ~mem_words ref_m
          in
          let divs = ref [] in
          let checks = ref 0 in
          let report arm kind detail = divs := { arm; kind; detail } :: !divs in
          let expect arm kind detail cond =
            incr checks;
            if not cond then report arm kind (detail ())
          in
          (* Per-arm: state comparison + local invariants. *)
          let per_arm a =
            match run_engine a.config ~seed program with
            | Error msg ->
                incr checks;
                report a.label "crash" msg;
                None
            | Ok (res, m) ->
                let raw = fingerprint_of res m in
                let fp = perturb ~arm:a.label raw in
                incr checks;
                let d = Fingerprint.diff reference fp in
                if d <> [] then report a.label "state" (String.concat "; " d);
                let c = res.Engine.counters in
                expect a.label "metamorphic:region-accounting"
                  (fun () ->
                    Printf.sprintf "completions %d + side exits %d > entries %d"
                      c.Perf_model.region_completions c.Perf_model.side_exits
                      c.Perf_model.region_entries)
                  (c.Perf_model.region_completions + c.Perf_model.side_exits
                  <= c.Perf_model.region_entries);
                if a.config.Engine.cache_capacity = None then
                  expect a.label "metamorphic:unbounded-cache-churn"
                    (fun () ->
                      Printf.sprintf "%d evictions, %d flushes with no capacity"
                        c.Perf_model.cache_evictions c.Perf_model.cache_flushes)
                    (c.Perf_model.cache_evictions = 0
                    && c.Perf_model.cache_flushes = 0);
                Some (a, res, raw)
            in
          let runs = List.filter_map per_arm arms in
          let find label =
            List.find_opt (fun (a, _, _) -> String.equal a.label label) runs
          in
          (* Cross-arm invariants, all anchored on the profiling-only arm. *)
          (match find "t0" with
          | None -> ()
          | Some (_, t0, _) ->
              List.iter
                (fun (a, res, _) ->
                  if a.label <> "t0" then
                    expect a.label "metamorphic:profiling-monotone"
                      (fun () ->
                        Printf.sprintf "profiling ops %d > t0's %d"
                          res.Engine.profiling_ops t0.Engine.profiling_ops)
                      (res.Engine.profiling_ops <= t0.Engine.profiling_ops))
                runs;
              List.iter
                (fun (a, res, _) ->
                  if
                    List.mem a.label translation_invariant && a.label <> "t0"
                  then
                    expect a.label "metamorphic:translation-invariant"
                      (fun () ->
                        Printf.sprintf "%d blocks translated vs t0's %d"
                          res.Engine.counters.Perf_model.blocks_translated
                          t0.Engine.counters.Perf_model.blocks_translated)
                      (res.Engine.counters.Perf_model.blocks_translated
                      = t0.Engine.counters.Perf_model.blocks_translated))
                runs;
              if t0.Engine.error = None then
                (* AVEP partition: with no regions every executed
                   instruction is profiled in exactly one block. *)
                let snap = t0.Engine.snapshot in
                let attributed =
                  List.fold_left
                    (fun acc (b : Block_map.block) ->
                      acc + (snap.Snapshot.use.(b.Block_map.id) * b.Block_map.size))
                    0
                    (Block_map.blocks snap.Snapshot.block_map)
                in
                expect "t0" "metamorphic:avep-partition"
                  (fun () ->
                    Printf.sprintf "use-weighted block sizes %d <> steps %d"
                      attributed t0.Engine.steps)
                  (attributed = t0.Engine.steps));
          (* Telemetry must be observation only: re-run one optimizing
             arm with a live sink and demand the identical run, and that
             the per-stage step attribution partitions the step count. *)
          (match find "t2" with
          | None -> ()
          | Some (a, res, raw) -> (
              let stage_steps = ref 0 in
              let sink =
                Sink.of_fun (fun ~step:_ ev ->
                    match ev with
                    | Event.Stage_cost { steps; _ } ->
                        stage_steps := !stage_steps + steps
                    | _ -> ())
              in
              match
                run_engine { a.config with Engine.sink } ~seed program
              with
              | Error msg -> report "t2+sink" "crash" msg
              | Ok (sres, sm) ->
                  let sfp = fingerprint_of sres sm in
                  incr checks;
                  let d = Fingerprint.diff raw sfp in
                  if d <> [] then
                    report "t2+sink" "metamorphic:sink-identity"
                      (String.concat "; " d);
                  expect "t2+sink" "metamorphic:sink-identity"
                    (fun () ->
                      Printf.sprintf
                        "cycles %.1f vs %.1f, profiling ops %d vs %d"
                        sres.Engine.counters.Perf_model.cycles
                        res.Engine.counters.Perf_model.cycles
                        sres.Engine.profiling_ops res.Engine.profiling_ops)
                    (Float.equal sres.Engine.counters.Perf_model.cycles
                       res.Engine.counters.Perf_model.cycles
                    && sres.Engine.profiling_ops = res.Engine.profiling_ops);
                  expect "t2+sink" "metamorphic:stage-partition"
                    (fun () ->
                      Printf.sprintf "stage steps sum %d <> steps %d"
                        !stage_steps sres.Engine.steps)
                    (!stage_steps = sres.Engine.steps)));
          (* Suspend/resume identity: stop the optimizing arm at a
             seeded guest instruction, round-trip the engine image
             through its serialized text (capture -> to_string ->
             of_string -> restore), complete the run and demand the
             uninterrupted arm's exact fingerprint and cycle count.
             The suspension point is a pure function of the case seed,
             so the verdict stays deterministic at every job count. *)
          (match find "t2" with
          | Some (a, res, raw) when res.Engine.steps > 0 -> (
              let module Snap = Tpdbt_dbt.Exec_snapshot in
              let suspend_at =
                1
                + Int64.(
                    to_int
                      (rem (logand seed 0x7FFFFFFFL) (of_int res.Engine.steps)))
              in
              let sus_config =
                {
                  a.config with
                  Engine.deadline = Some suspend_at;
                  suspend_on_deadline = true;
                }
              in
              match
                let eng =
                  Engine.create ~config:sus_config ~mem_words ~seed program
                in
                let first = Engine.run eng in
                match first.Engine.error with
                | Some (Error.Suspended _) -> (
                    let text =
                      Snap.to_string ~config:sus_config ~program
                        (Engine.capture eng)
                    in
                    match Snap.of_string text with
                    | Snap.Snapshot parsed -> (
                        (* The resume re-arms no triggers; the digest
                           check must accept that (triggers are
                           excluded from it by design). *)
                        match Snap.restore ~config:a.config ~program parsed with
                        | Ok resumed ->
                            let fin = Engine.run resumed in
                            Ok (Some (fin, Engine.machine resumed))
                        | Error msg -> Error ("restore rejected: " ^ msg))
                    | Snap.Stale_version v -> Error ("stale version: " ^ v)
                    | Snap.Corrupt reason ->
                        Error ("round-trip corrupt: " ^ reason))
                | _ ->
                    (* The program halted before the next dispatch
                       poll; nothing was interrupted. *)
                    Ok None
              with
              | exception exn ->
                  incr checks;
                  report "t2-resume" "crash" (Printexc.to_string exn)
              | Error msg ->
                  incr checks;
                  report "t2-resume" "metamorphic:resume-roundtrip" msg
              | Ok None -> ()
              | Ok (Some (fin, m)) ->
                  incr checks;
                  let d = Fingerprint.diff raw (fingerprint_of fin m) in
                  if d <> [] then
                    report "t2-resume" "metamorphic:resume-identity"
                      (String.concat "; " d);
                  expect "t2-resume" "metamorphic:resume-identity"
                    (fun () ->
                      Printf.sprintf "cycles %.1f vs uninterrupted %.1f"
                        fin.Engine.counters.Perf_model.cycles
                        res.Engine.counters.Perf_model.cycles)
                    (Float.equal fin.Engine.counters.Perf_model.cycles
                       res.Engine.counters.Perf_model.cycles))
          | Some _ | None -> ());
          { divergences = List.rev !divs; skipped = None; checks = !checks })
