(** Cross-config differential execution oracle.

    One generated program, one guest seed; the pure interpreter is the
    reference and every arm of a fixed config matrix — thresholds
    (including profiling-only, i.e. optimizer off), bounded caches
    under each eviction policy, trace scheduling, adaptive
    re-optimisation, the shadow oracle — must reproduce its end-state
    fingerprint bit for bit.  On top of the state comparison the
    oracle checks metamorphic / perf-counter invariants:

    - {b unbounded ≡ pre-cache}: an unbounded-cache arm must record
      zero evictions and zero flushes — the invariant that keeps the
      default engine byte-identical to the pre-cache engine;
    - {b AVEP partition}: on the profiling-only arm of a cleanly
      halting run, [sum(use(b) * size(b)) = steps] — every executed
      instruction is profiled exactly once;
    - {b profiling monotonicity}: no optimizing arm performs more
      profiling operations than the profiling-only arm;
    - {b translation invariance}: unbounded, non-dissolving arms
      cold-translate exactly the same number of blocks;
    - {b region accounting}: completions + side exits never exceed
      entries;
    - {b telemetry-sink identity}: re-running one arm with a live sink
      changes neither the fingerprint, the cycle count, nor the
      profiling-op count — telemetry must be observation only;
    - {b stage-step partition}: with a live sink, the per-stage step
      attribution sums exactly to the executed instruction count;
    - {b suspend/resume identity}: suspending one optimizing arm at a
      seeded guest instruction, round-tripping the engine image
      through its serialized snapshot text and completing the run
      reproduces the uninterrupted arm's fingerprint and cycle count
      exactly (the fuzz-scale form of docs/snapshots.md's guarantee).

    Everything is deterministic: same program + seed, same verdict. *)

type divergence = {
  arm : string;  (** config label, or the metamorphic property's arm *)
  kind : string;  (** ["state"], ["crash"], or ["metamorphic:<name>"] *)
  detail : string;
}

type verdict = {
  divergences : divergence list;
  skipped : string option;
      (** the case could not be judged (e.g. the reference run
          outlived the step budget — only degenerate shrink candidates
          do); no comparisons were made *)
  checks : int;  (** comparisons performed, for the summary *)
}

val mem_words : int
(** Data-memory size all oracle runs use (1024 words — small enough to
    hash cheaply, large enough for the generator's address window). *)

val max_steps : int
(** Per-run guest-instruction budget (200k; generated programs
    terminate well under it by construction). *)

val arm_labels : string list
(** The config matrix, in evaluation order. *)

val check :
  ?perturb:(arm:string -> Fingerprint.t -> Fingerprint.t) ->
  seed:int64 ->
  Tpdbt_isa.Program.t ->
  verdict
(** Run the full matrix.  [perturb] post-processes each engine arm's
    fingerprint before comparison — the hook the test harness uses to
    inject a deliberate translator bug and prove the oracle catches
    and shrinks it; production runs leave it unset.  Never raises: an
    exception escaping engine construction or execution is itself
    reported as a ["crash"] divergence. *)
