(** Reproducer persistence.

    Every divergent case is written to the corpus directory as three
    files sharing a stem derived from the campaign seed and case index
    (so re-running the same campaign overwrites rather than
    accumulates):

    - [<id>.g32] — the {e shrunk} program, binary-encoded
      ({!Tpdbt_isa.Encode}), ready for [tpdbt run]/[tpdbt trace];
    - [<id>.s] — its disassembly, for reading the reproducer;
    - [<id>.json] — metadata: the guest seed the oracle used, the
      case index, sizes before/after shrinking, and every divergence
      the oracle reported. *)

type entry = {
  id : string;  (** file stem, e.g. ["seed42-case17"] *)
  case : int;
  guest_seed : int64;
  original_active : int;
  shrunk_active : int;
  divergences : Oracle.divergence list;
}

val divergence_json : Oracle.divergence -> string

val save : dir:string -> entry -> Tpdbt_isa.Program.t -> string list
(** Write the shrunk program and metadata under [dir] (created,
    including parents, if missing).  Returns the paths written, in
    [.g32], [.s], [.json] order. *)
