(** Delta-debugging shrinker for failing fuzz cases.

    Shrinking substitutes [nop] for instructions rather than deleting
    them: the code layout is preserved, so every branch target stays
    valid, block identities stay comparable, and [Program.make] accepts
    every candidate.  The driver [ddmin]s over the set of non-[nop]
    indices — first trying to blank large complements, then smaller and
    smaller chunks down to single instructions — keeping a candidate
    whenever [still_fails] says the divergence survives.  The result is
    1-minimal: blanking any single remaining instruction makes the
    failure disappear.

    [still_fails] must be deterministic (the oracle is: same program,
    same seed, same verdict), and is the only judge — the shrinker knows
    nothing about what the failure is. *)

val minimize :
  still_fails:(Tpdbt_isa.Program.t -> bool) ->
  Tpdbt_isa.Program.t ->
  Tpdbt_isa.Program.t
(** Smallest (by {!active}) nop-substituted variant that still fails.
    If the input itself does not fail, it is returned unchanged. *)

val active : Tpdbt_isa.Program.t -> int
(** Number of non-[nop] instructions — the size the acceptance bar
    ("shrinks to [<=] 10 instructions") is measured in. *)
