module Machine = Tpdbt_vm.Machine
module Reg = Tpdbt_isa.Reg
module Json = Tpdbt_telemetry.Json

type t = {
  regs : int list;
  mem_hash : int64;
  outputs_hash : int64;
  outputs : int;
  steps : int;
  status : string;
}

(* FNV-1a over the low 32 bits of each word, byte by byte. *)
let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_word h v =
  let h = fnv_byte h v in
  let h = fnv_byte h (v lsr 8) in
  let h = fnv_byte h (v lsr 16) in
  fnv_byte h (v lsr 24)

let status_of_run result ~halted =
  match result with
  | Error trap -> Format.asprintf "trap: %a" Machine.pp_trap trap
  | Ok () -> if halted then "halted" else "running"

let status_of_error error ~halted =
  match error with
  | Some (Tpdbt_dbt.Error.Trap trap) ->
      Format.asprintf "trap: %a" Machine.pp_trap trap
  | Some (Tpdbt_dbt.Error.Limit_exceeded _) -> "running"
  | Some e -> "error: " ^ Tpdbt_dbt.Error.to_string e
  | None -> if halted then "halted" else "running"

let of_machine ~status ~mem_words m =
  let mem_hash = ref fnv_basis in
  for addr = 0 to mem_words - 1 do
    mem_hash := fnv_word !mem_hash (Machine.mem m addr)
  done;
  let outputs = Machine.outputs m in
  let outputs_hash = List.fold_left fnv_word fnv_basis outputs in
  {
    regs = List.map (fun r -> Machine.reg m r) Reg.all;
    mem_hash = !mem_hash;
    outputs_hash;
    outputs = List.length outputs;
    steps = Machine.steps m;
    status;
  }

let equal a b =
  a.regs = b.regs
  && Int64.equal a.mem_hash b.mem_hash
  && Int64.equal a.outputs_hash b.outputs_hash
  && a.outputs = b.outputs && a.steps = b.steps
  && String.equal a.status b.status

let diff a b =
  let d = ref [] in
  let add fmt = Printf.ksprintf (fun s -> d := s :: !d) fmt in
  if a.status <> b.status then add "status %S vs %S" a.status b.status;
  if a.steps <> b.steps then add "steps %d vs %d" a.steps b.steps;
  if a.regs <> b.regs then begin
    let ra = Array.of_list a.regs and rb = Array.of_list b.regs in
    Array.iteri
      (fun i v -> if v <> rb.(i) then add "r%d %d vs %d" i v rb.(i))
      ra
  end;
  if not (Int64.equal a.mem_hash b.mem_hash) then
    add "mem hash %Lx vs %Lx" a.mem_hash b.mem_hash;
  if a.outputs <> b.outputs then add "outputs %d vs %d" a.outputs b.outputs
  else if not (Int64.equal a.outputs_hash b.outputs_hash) then
    add "output hash %Lx vs %Lx" a.outputs_hash b.outputs_hash;
  List.rev !d

let to_json t =
  Json.obj
    [
      ("status", Json.quote t.status);
      ("steps", string_of_int t.steps);
      ("regs", Json.arr (List.map string_of_int t.regs));
      ("mem_hash", Json.quote (Printf.sprintf "%016Lx" t.mem_hash));
      ("outputs", string_of_int t.outputs);
      ("outputs_hash", Json.quote (Printf.sprintf "%016Lx" t.outputs_hash));
    ]
