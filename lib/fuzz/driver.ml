module Prng = Tpdbt_vm.Prng
module Pool = Tpdbt_parallel.Pool
module Json = Tpdbt_telemetry.Json
module Program = Tpdbt_isa.Program

type config = {
  budget : int;
  size : int;
  seed : int64;
  jobs : int option;
  corpus_dir : string option;
}

type failure = {
  case : int;
  guest_seed : int64;
  original : Program.t;
  shrunk : Program.t;
  original_active : int;
  shrunk_active : int;
  divergences : Oracle.divergence list;
  saved : string list;
}

type summary = {
  budget : int;
  seed : int64;
  skipped : int;
  checks : int;
  failures : failure list;
}

(* SplitMix64's golden-ratio increment decorrelates per-case seeds even
   for adjacent campaign seeds; +1 keeps case 0 off the campaign seed
   itself. *)
let case_seed campaign case =
  Int64.add campaign (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (case + 1)))

let run_case ?perturb (config : config) case =
  let prng = Prng.create ~seed:(case_seed config.seed case) in
  let guest_seed = Prng.next_int64 prng in
  let program =
    Gen.program prng { Gen.size = config.size; mem_words = Oracle.mem_words }
  in
  let verdict = Oracle.check ?perturb ~seed:guest_seed program in
  (guest_seed, program, verdict)

let run ?perturb config =
  let results, _stats =
    Pool.map ?jobs:config.jobs
      (run_case ?perturb config)
      (Array.init config.budget (fun case -> case))
  in
  let skipped = ref 0 in
  let checks = ref 0 in
  let failures = ref [] in
  Array.iteri
    (fun case (guest_seed, program, (v : Oracle.verdict)) ->
      checks := !checks + v.Oracle.checks;
      match v.Oracle.skipped with
      | Some _ -> incr skipped
      | None ->
          if v.Oracle.divergences <> [] then begin
            let still_fails p =
              let v' = Oracle.check ?perturb ~seed:guest_seed p in
              v'.Oracle.skipped = None && v'.Oracle.divergences <> []
            in
            let shrunk = Shrink.minimize ~still_fails program in
            let original_active = Shrink.active program in
            let shrunk_active = Shrink.active shrunk in
            let saved =
              match config.corpus_dir with
              | None -> []
              | Some dir ->
                  Corpus.save ~dir
                    {
                      Corpus.id = Printf.sprintf "seed%Ld-case%d" config.seed case;
                      case;
                      guest_seed;
                      original_active;
                      shrunk_active;
                      divergences = v.Oracle.divergences;
                    }
                    shrunk
            in
            failures :=
              {
                case;
                guest_seed;
                original = program;
                shrunk;
                original_active;
                shrunk_active;
                divergences = v.Oracle.divergences;
                saved;
              }
              :: !failures
          end)
    results;
  {
    budget = config.budget;
    seed = config.seed;
    skipped = !skipped;
    checks = !checks;
    failures = List.rev !failures;
  }

let failure_json f =
  Json.obj
    [
      ("case", string_of_int f.case);
      ("guest_seed", Json.quote (Int64.to_string f.guest_seed));
      ("original_active", string_of_int f.original_active);
      ("shrunk_active", string_of_int f.shrunk_active);
      ("divergences", Json.arr (List.map Corpus.divergence_json f.divergences));
      ("saved", Json.arr (List.map Json.quote f.saved));
    ]

let summary_json s =
  Json.obj
    [
      ("tool", Json.quote "tpdbt fuzz");
      ("seed", Json.quote (Int64.to_string s.seed));
      ("budget", string_of_int s.budget);
      ("skipped", string_of_int s.skipped);
      ("checks", string_of_int s.checks);
      ("arms", Json.arr (List.map Json.quote Oracle.arm_labels));
      ("divergent_cases", string_of_int (List.length s.failures));
      ("failures", Json.arr (List.map failure_json s.failures));
    ]
