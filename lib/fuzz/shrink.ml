module Instr = Tpdbt_isa.Instr
module Program = Tpdbt_isa.Program

let active (p : Program.t) =
  Array.fold_left
    (fun n instr -> if instr = Instr.Nop then n else n + 1)
    0 p.Program.code

(* Indices still carrying a real instruction. *)
let live_indices code =
  let l = ref [] in
  Array.iteri (fun i instr -> if instr <> Instr.Nop then l := i :: !l) code;
  List.rev !l

let blanked (p : Program.t) idxs =
  let code = Array.copy p.Program.code in
  List.iter (fun i -> code.(i) <- Instr.Nop) idxs;
  (* Layout (and hence every branch target) is unchanged, so [make]
     cannot reject the candidate. *)
  Program.make ~entry:p.Program.entry ~data_init:p.Program.data_init code

(* Split [l] into [n] chunks of near-equal length. *)
let chunks n l =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec take k l acc =
    if k = 0 then (List.rev acc, l)
    else
      match l with
      | [] -> (List.rev acc, [])
      | x :: tl -> take (k - 1) tl (x :: acc)
  in
  let rec go i l acc =
    if i = n then List.rev acc
    else
      let k = base + if i < extra then 1 else 0 in
      let c, rest = take k l [] in
      go (i + 1) rest (if c = [] then acc else c :: acc)
  in
  go 0 l []

let minimize ~still_fails (p : Program.t) =
  if not (still_fails p) then p
  else
    (* Classic ddmin over the live-index set: try keeping only each
       chunk (blank its complement), then blanking each chunk; on
       success restart at coarse granularity, otherwise refine. *)
    let current = ref p in
    let n = ref 2 in
    let continue_ = ref true in
    while !continue_ do
      let live = live_indices !current.Program.code in
      let parts = chunks !n live in
      let nparts = List.length parts in
      let try_candidate blank_idxs =
        if blank_idxs = [] then false
        else
          let cand = blanked !current blank_idxs in
          if still_fails cand then begin
            current := cand;
            true
          end
          else false
      in
      (* Reduce to one chunk: blank everything outside it. *)
      let reduced_to_chunk =
        List.exists
          (fun keep ->
            try_candidate
              (List.filter (fun i -> not (List.mem i keep)) live))
          parts
      in
      if reduced_to_chunk then n := 2
      else begin
        (* Blank one chunk, keep the rest. *)
        let reduced_by_chunk =
          nparts > 1 && List.exists try_candidate parts
        in
        if reduced_by_chunk then n := max (!n - 1) 2
        else if !n >= List.length live then continue_ := false
        else n := min (2 * !n) (List.length live)
      end
    done;
    !current
