(** Perf-regression comparison over two [BENCH_perf.json] files.

    [tpdbt perfdiff old.json new.json] parses both files with the
    strict {!Tpdbt_telemetry.Json} parser, joins their bench rows by
    name, and judges each tracked metric against a fractional
    tolerance.  The CLI exits nonzero iff {!regressions} is
    non-empty.  CI runs it twice against the committed baseline: a
    hard allocation gate ([--alloc-only], deterministic) and a
    warn-only wall-clock leg (hardware-dependent). *)

type direction = Higher_better | Lower_better
type verdict = Regression | Improvement | Within

val metrics : (string * direction) list
(** The judged metrics: [guest_ips] (higher is better),
    [alloc_per_instr] and [cycles] (lower is better). *)

type delta = {
  bench : string;
  metric : string;
  older : float;
  newer : float;
  change : float;  (** fractional: [(newer - older) /. older] *)
  verdict : verdict;
}

type report = {
  tolerance : float;
  deltas : delta list;
  missing : string list;  (** benches in the old file only *)
  added : string list;  (** benches in the new file only *)
  host_note : string option;
      (** set when the two files carry different host metadata *)
}

val judge :
  tolerance:float -> direction -> older:float -> newer:float -> float * verdict
(** [(change, verdict)].  A change whose magnitude is within
    [tolerance] is {!Within}; beyond it, the sign and [direction]
    decide.  [older = 0] with [newer <> 0] counts as a full (1.0)
    change; both zero is no change. *)

val of_strings :
  ?only:string -> tolerance:float -> string -> string -> (report, string) result
(** [of_strings ?only ~tolerance old_contents new_contents].  [only]
    restricts the judged metrics to that single metric (the CI
    allocation gate judges [alloc_per_instr] alone — it is
    deterministic where wall clock is not); naming an untracked metric
    is an [Error].  Each file must carry a [host] object — a BENCH
    file that does not say what machine it came from cannot be judged,
    so a missing or malformed stanza is a validation [Error], not a
    silent pass.  [Error] carries a parse or shape diagnostic naming
    the offending file. *)

val regressions : report -> delta list

val render : report -> string
(** Fixed-width table, one row per (bench, metric), then the
    missing/added benches, the host note and a regression count. *)
