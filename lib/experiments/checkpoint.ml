module Engine = Tpdbt_dbt.Engine
module Perf_model = Tpdbt_dbt.Perf_model
module Spec = Tpdbt_workloads.Spec
module Suite = Tpdbt_workloads.Suite
module Profile_io = Tpdbt_profiles.Profile_io

(* Version 2 widened the counters line with the code-cache and
   shadow-oracle fields; bumping the magic makes a v1 checkpoint parse
   as stale (→ recomputed) instead of mis-reading. *)
let magic = "TPDBT-CKPT 2"

(* ---- serialisation ---------------------------------------------------- *)

let counters_to_line (c : Perf_model.counters) =
  (* %h round-trips the float exactly; every other field is an int. *)
  Printf.sprintf
    "counters %h %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d \
     %d"
    c.Perf_model.cycles c.blocks_translated c.regions_formed c.region_entries
    c.region_completions c.loop_backs c.side_exits c.optimization_rounds
    c.regions_dissolved c.faults_injected c.retrans_retries c.fault_dissolves
    c.blocks_retranslated c.cache_evictions c.cache_flushes
    c.cache_evicted_instrs c.cache_peak_instrs c.shadow_replays
    c.shadow_divergences c.corrupted_entries c.regions_quarantined
    c.watchdog_degraded

let result_to_buf buf (r : Engine.result) =
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "steps %d" r.Engine.steps;
  add "profiling_ops %d" r.Engine.profiling_ops;
  add "outputs %d%s" (List.length r.Engine.outputs)
    (String.concat ""
       (List.map (fun v -> " " ^ string_of_int v) r.Engine.outputs));
  Buffer.add_string buf (counters_to_line r.Engine.counters ^ "\n");
  add "regstats %d" (List.length r.Engine.region_stats);
  List.iter
    (fun (id, (s : Engine.region_stats)) ->
      add "regstat %d %d %d %d %d" id s.Engine.entries s.Engine.side_exits
        s.Engine.loop_back_taken s.Engine.loop_back_seen)
    r.Engine.region_stats;
  let text = Profile_io.to_string r.Engine.snapshot in
  let nlines = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 text in
  add "snapshot %d" nlines;
  Buffer.add_string buf text

let data_to_string (d : Runner.data) =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "%s" magic;
  add "bench %s" d.Runner.bench.Spec.name;
  add "thresholds %d" (List.length d.Runner.runs);
  List.iter
    (fun (r : Runner.threshold_run) ->
      add "threshold %s %d" r.Runner.label r.Runner.scaled)
    d.Runner.runs;
  add "avep";
  result_to_buf buf d.Runner.avep;
  add "train";
  result_to_buf buf d.Runner.train;
  List.iter
    (fun (r : Runner.threshold_run) ->
      add "run %s %d" r.Runner.label r.Runner.scaled;
      result_to_buf buf r.Runner.result)
    d.Runner.runs;
  add "end";
  Buffer.contents buf

(* ---- parsing ---------------------------------------------------------- *)

exception Malformed

let parse_data spec text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let cursor = ref 0 in
  let next () =
    if !cursor >= Array.length lines then raise Malformed
    else (
      incr cursor;
      lines.(!cursor - 1))
  in
  let expect s = if next () <> s then raise Malformed in
  let int_exn s =
    match int_of_string_opt s with Some v -> v | None -> raise Malformed
  in
  let words () = String.split_on_char ' ' (next ()) in
  let read_result () =
    let steps =
      match words () with [ "steps"; n ] -> int_exn n | _ -> raise Malformed
    in
    let profiling_ops =
      match words () with
      | [ "profiling_ops"; n ] -> int_exn n
      | _ -> raise Malformed
    in
    let outputs =
      match words () with
      | "outputs" :: n :: vs when List.length vs = int_exn n ->
          List.map int_exn vs
      | _ -> raise Malformed
    in
    let counters =
      match words () with
      | [
          "counters"; cy; a; b; c; d; e; f; g; h; i; j; k; l; m; n; o; p; q;
          r; s; u; v;
        ] -> (
          match float_of_string_opt cy with
          | None -> raise Malformed
          | Some cycles ->
              {
                Perf_model.cycles;
                blocks_translated = int_exn a;
                regions_formed = int_exn b;
                region_entries = int_exn c;
                region_completions = int_exn d;
                loop_backs = int_exn e;
                side_exits = int_exn f;
                optimization_rounds = int_exn g;
                regions_dissolved = int_exn h;
                faults_injected = int_exn i;
                retrans_retries = int_exn j;
                fault_dissolves = int_exn k;
                blocks_retranslated = int_exn l;
                cache_evictions = int_exn m;
                cache_flushes = int_exn n;
                cache_evicted_instrs = int_exn o;
                cache_peak_instrs = int_exn p;
                shadow_replays = int_exn q;
                shadow_divergences = int_exn r;
                corrupted_entries = int_exn s;
                regions_quarantined = int_exn u;
                watchdog_degraded = int_exn v;
              })
      | _ -> raise Malformed
    in
    let nstats =
      match words () with
      | [ "regstats"; n ] -> int_exn n
      | _ -> raise Malformed
    in
    let region_stats =
      List.init nstats (fun _ ->
          match words () with
          | [ "regstat"; id; en; se; lbt; lbs ] ->
              ( int_exn id,
                {
                  Engine.entries = int_exn en;
                  side_exits = int_exn se;
                  loop_back_taken = int_exn lbt;
                  loop_back_seen = int_exn lbs;
                } )
          | _ -> raise Malformed)
    in
    let nlines =
      match words () with
      | [ "snapshot"; n ] -> int_exn n
      | _ -> raise Malformed
    in
    if nlines < 0 then raise Malformed;
    let snap_buf = Buffer.create 4096 in
    for _ = 1 to nlines do
      Buffer.add_string snap_buf (next ());
      Buffer.add_char snap_buf '\n'
    done;
    let snapshot =
      match Profile_io.of_string (Buffer.contents snap_buf) with
      | Ok s -> s
      | Error _ -> raise Malformed
    in
    {
      Engine.snapshot;
      counters;
      steps;
      profiling_ops;
      outputs;
      region_stats;
      error = None;
      faults = None;
    }
  in
  try
    expect magic;
    (match words () with
    | [ "bench"; name ] when name = spec.Spec.name -> ()
    | _ -> raise Malformed);
    let nruns =
      match words () with
      | [ "thresholds"; n ] -> int_exn n
      | _ -> raise Malformed
    in
    let labels =
      List.init nruns (fun _ ->
          match words () with
          | [ "threshold"; label; scaled ] -> (label, int_exn scaled)
          | _ -> raise Malformed)
    in
    expect "avep";
    let avep = read_result () in
    expect "train";
    let train = read_result () in
    let raw_runs =
      List.map
        (fun (label, scaled) ->
          (match words () with
          | [ "run"; l; s ] when l = label && int_exn s = scaled -> ()
          | _ -> raise Malformed);
          (label, scaled, read_result ()))
        labels
    in
    expect "end";
    Some (labels, Runner.assemble spec avep train raw_runs)
  with Malformed -> None

(* ---- files ------------------------------------------------------------ *)

let path ~dir spec = Filename.concat dir (spec.Spec.name ^ ".ckpt")

let save ~dir (d : Runner.data) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let final = path ~dir d.Runner.bench in
  let tmp = final ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (data_to_string d));
  Sys.rename tmp final

let load ?(thresholds = Suite.thresholds) ~dir spec =
  let file = path ~dir spec in
  if not (Sys.file_exists file) then None
  else
    let text =
      let ic = open_in file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match parse_data spec text with
    | Some (labels, data) when labels = thresholds -> Some data
    | Some _ | None -> None

let data_of_string spec text = Option.map snd (parse_data spec text)

let hooks ?thresholds ~dir () =
  ((fun d -> save ~dir d), fun spec -> load ?thresholds ~dir spec)

let run_many ?thresholds ?progress ~dir benches =
  let save, load = hooks ?thresholds ~dir () in
  Runner.run_many ?thresholds ?progress ~save ~load benches

let run_many_par ?thresholds ?jobs ?progress ?sink ?metrics ?report ~dir
    benches =
  let save, load = hooks ?thresholds ~dir () in
  Runner.run_many_par ?thresholds ?jobs ?progress ?sink ?metrics ?report ~save
    ~load benches
