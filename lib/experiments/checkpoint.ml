module Engine = Tpdbt_dbt.Engine
module Perf_model = Tpdbt_dbt.Perf_model
module Spec = Tpdbt_workloads.Spec
module Suite = Tpdbt_workloads.Suite
module Profile_io = Tpdbt_profiles.Profile_io

(* Version 4 lets the store hold mid-run state: a file is either a
   finished benchmark (the v3 payload behind a "kind finished" line)
   or a suspended one — the completed stages plus the in-flight
   engine's serialized image — so a killed sweep resumes at
   guest-instruction granularity instead of re-running.  Version 3
   made the store crash-consistent: the header carries a CRC32 and
   byte length of the payload, saves fsync before the atomic rename,
   and loads classify damage (truncation, bit flips, trailing garbage,
   stale versions) instead of conflating it with absence.  Version 2
   widened the counters line with the code-cache and shadow-oracle
   fields. *)
let magic = "TPDBT-CKPT 4"
let magic_prefix = "TPDBT-CKPT "

type stored = Finished of Runner.data | Suspended of Runner.partial

type classified =
  | Valid of stored
  | Missing
  | Stale_version of string
  | Corrupt of string

(* ---- CRC32 ------------------------------------------------------------- *)

(* Table-driven CRC32 (IEEE 802.3, reflected — the zlib/PNG polynomial),
   local so the store stays dependency-free. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor (Int32.shift_right_logical !c 1) 0xEDB88320l
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc_hex s = Printf.sprintf "%08lx" (crc32 s)

(* ---- serialisation ----------------------------------------------------- *)

let counters_to_line (c : Perf_model.counters) =
  (* %h round-trips the float exactly; every other field is an int. *)
  Printf.sprintf
    "counters %h %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d \
     %d"
    c.Perf_model.cycles c.blocks_translated c.regions_formed c.region_entries
    c.region_completions c.loop_backs c.side_exits c.optimization_rounds
    c.regions_dissolved c.faults_injected c.retrans_retries c.fault_dissolves
    c.blocks_retranslated c.cache_evictions c.cache_flushes
    c.cache_evicted_instrs c.cache_peak_instrs c.shadow_replays
    c.shadow_divergences c.corrupted_entries c.regions_quarantined
    c.watchdog_degraded

let result_to_buf buf (r : Engine.result) =
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "steps %d" r.Engine.steps;
  add "profiling_ops %d" r.Engine.profiling_ops;
  add "outputs %d%s" (List.length r.Engine.outputs)
    (String.concat ""
       (List.map (fun v -> " " ^ string_of_int v) r.Engine.outputs));
  Buffer.add_string buf (counters_to_line r.Engine.counters ^ "\n");
  add "regstats %d" (List.length r.Engine.region_stats);
  List.iter
    (fun (id, (s : Engine.region_stats)) ->
      add "regstat %d %d %d %d %d" id s.Engine.entries s.Engine.side_exits
        s.Engine.loop_back_taken s.Engine.loop_back_seen)
    r.Engine.region_stats;
  let text = Profile_io.to_string r.Engine.snapshot in
  let nlines = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 text in
  add "snapshot %d" nlines;
  Buffer.add_string buf text

let payload_of_data (d : Runner.data) =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "bench %s" d.Runner.bench.Spec.name;
  add "kind finished";
  add "thresholds %d" (List.length d.Runner.runs);
  List.iter
    (fun (r : Runner.threshold_run) ->
      add "threshold %s %d" r.Runner.label r.Runner.scaled)
    d.Runner.runs;
  add "avep";
  result_to_buf buf d.Runner.avep;
  add "train";
  result_to_buf buf d.Runner.train;
  List.iter
    (fun (r : Runner.threshold_run) ->
      add "run %s %d" r.Runner.label r.Runner.scaled;
      result_to_buf buf r.Runner.result)
    d.Runner.runs;
  add "end";
  Buffer.contents buf

let stage_header (s : Runner.stage) =
  match s with
  | Runner.Avep -> "avep"
  | Runner.Train -> "train"
  | Runner.Threshold (label, scaled) -> Printf.sprintf "run %s %d" label scaled

let payload_of_partial (p : Runner.partial) =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "bench %s" p.Runner.p_bench.Spec.name;
  add "kind suspended";
  add "thresholds %d" (List.length p.Runner.p_thresholds);
  List.iter
    (fun (label, scaled) -> add "threshold %s %d" label scaled)
    p.Runner.p_thresholds;
  add "done %d" (List.length p.Runner.p_done);
  List.iter
    (fun (stage, result) ->
      add "stage %s" (stage_header stage);
      result_to_buf buf result)
    p.Runner.p_done;
  add "next %s" (stage_header p.Runner.p_next);
  let text = p.Runner.p_snapshot in
  let nlines =
    String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 text
  in
  add "exec %d" nlines;
  Buffer.add_string buf text;
  add "end";
  Buffer.contents buf

let seal payload =
  Printf.sprintf "%s\ncrc %s %d\n%s" magic (crc_hex payload)
    (String.length payload) payload

let data_to_string (d : Runner.data) = seal (payload_of_data d)
let partial_to_string (p : Runner.partial) = seal (payload_of_partial p)

(* ---- parsing ----------------------------------------------------------- *)

exception Malformed of string

let parse_payload ?expect_thresholds spec text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let cursor = ref 0 in
  let next () =
    if !cursor >= Array.length lines then
      raise (Malformed "payload ends mid-record")
    else (
      incr cursor;
      lines.(!cursor - 1))
  in
  let expect s =
    if next () <> s then raise (Malformed (Printf.sprintf "expected %S" s))
  in
  let int_exn s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> raise (Malformed (Printf.sprintf "not an integer: %S" s))
  in
  let words () = String.split_on_char ' ' (next ()) in
  let read_result () =
    let steps =
      match words () with
      | [ "steps"; n ] -> int_exn n
      | _ -> raise (Malformed "bad steps line")
    in
    let profiling_ops =
      match words () with
      | [ "profiling_ops"; n ] -> int_exn n
      | _ -> raise (Malformed "bad profiling_ops line")
    in
    let outputs =
      match words () with
      | "outputs" :: n :: vs when List.length vs = int_exn n ->
          List.map int_exn vs
      | _ -> raise (Malformed "bad outputs line")
    in
    let counters =
      match words () with
      | [
          "counters"; cy; a; b; c; d; e; f; g; h; i; j; k; l; m; n; o; p; q;
          r; s; u; v;
        ] -> (
          match float_of_string_opt cy with
          | None -> raise (Malformed "bad cycles value")
          | Some cycles ->
              {
                Perf_model.cycles;
                blocks_translated = int_exn a;
                regions_formed = int_exn b;
                region_entries = int_exn c;
                region_completions = int_exn d;
                loop_backs = int_exn e;
                side_exits = int_exn f;
                optimization_rounds = int_exn g;
                regions_dissolved = int_exn h;
                faults_injected = int_exn i;
                retrans_retries = int_exn j;
                fault_dissolves = int_exn k;
                blocks_retranslated = int_exn l;
                cache_evictions = int_exn m;
                cache_flushes = int_exn n;
                cache_evicted_instrs = int_exn o;
                cache_peak_instrs = int_exn p;
                shadow_replays = int_exn q;
                shadow_divergences = int_exn r;
                corrupted_entries = int_exn s;
                regions_quarantined = int_exn u;
                watchdog_degraded = int_exn v;
              })
      | _ -> raise (Malformed "bad counters line")
    in
    let nstats =
      match words () with
      | [ "regstats"; n ] -> int_exn n
      | _ -> raise (Malformed "bad regstats line")
    in
    let region_stats =
      List.init nstats (fun _ ->
          match words () with
          | [ "regstat"; id; en; se; lbt; lbs ] ->
              ( int_exn id,
                {
                  Engine.entries = int_exn en;
                  side_exits = int_exn se;
                  loop_back_taken = int_exn lbt;
                  loop_back_seen = int_exn lbs;
                } )
          | _ -> raise (Malformed "bad regstat line"))
    in
    let nlines =
      match words () with
      | [ "snapshot"; n ] -> int_exn n
      | _ -> raise (Malformed "bad snapshot line")
    in
    if nlines < 0 then raise (Malformed "negative snapshot length");
    let snap_buf = Buffer.create 4096 in
    for _ = 1 to nlines do
      Buffer.add_string snap_buf (next ());
      Buffer.add_char snap_buf '\n'
    done;
    let snapshot =
      match Profile_io.of_string (Buffer.contents snap_buf) with
      | Ok s -> s
      | Error _ -> raise (Malformed "embedded profile rejected")
    in
    {
      Engine.snapshot;
      counters;
      steps;
      profiling_ops;
      outputs;
      region_stats;
      error = None;
      faults = None;
    }
  in
  let finish_checks () =
    expect "end";
    (* the payload always ends "end\n", so the final split element is
       one empty string; anything more is garbage a broken writer
       appended inside the measured payload *)
    if not (!cursor = Array.length lines - 1 && lines.(!cursor) = "") then
      raise (Malformed "trailing garbage after end marker")
  in
  try
    (match words () with
    | [ "bench"; name ] when name = spec.Spec.name -> ()
    | [ "bench"; name ] ->
        raise
          (Malformed
             (Printf.sprintf "checkpoint is for benchmark %s, not %s" name
                spec.Spec.name))
    | _ -> raise (Malformed "bad bench line"));
    let kind =
      match words () with
      | [ "kind"; k ] -> k
      | _ -> raise (Malformed "bad kind line")
    in
    let nruns =
      match words () with
      | [ "thresholds"; n ] -> int_exn n
      | _ -> raise (Malformed "bad thresholds line")
    in
    let labels =
      List.init nruns (fun _ ->
          match words () with
          | [ "threshold"; label; scaled ] -> (label, int_exn scaled)
          | _ -> raise (Malformed "bad threshold line"))
    in
    (match expect_thresholds with
    | Some expected when labels <> expected ->
        raise (Malformed "recorded under a different threshold list")
    | _ -> ());
    match kind with
    | "finished" ->
        expect "avep";
        let avep = read_result () in
        expect "train";
        let train = read_result () in
        let raw_runs =
          List.map
            (fun (label, scaled) ->
              (match words () with
              | [ "run"; l; s ] when l = label && int_exn s = scaled -> ()
              | _ -> raise (Malformed "run header out of order"));
              (label, scaled, read_result ()))
            labels
        in
        finish_checks ();
        Valid (Finished (Runner.assemble spec avep train raw_runs))
    | "suspended" ->
        let stage_of = function
          | [ "avep" ] -> Runner.Avep
          | [ "train" ] -> Runner.Train
          | [ "run"; label; scaled ]
            when List.assoc_opt label labels = Some (int_exn scaled) ->
              Runner.Threshold (label, int_exn scaled)
          | _ -> raise (Malformed "bad stage descriptor")
        in
        let ndone =
          match words () with
          | [ "done"; n ] -> int_exn n
          | _ -> raise (Malformed "bad done line")
        in
        if ndone < 0 then raise (Malformed "negative done count");
        let p_done =
          List.init ndone (fun _ ->
              match words () with
              | "stage" :: rest ->
                  let stage = stage_of rest in
                  (stage, read_result ())
              | _ -> raise (Malformed "bad stage line"))
        in
        let p_next =
          match words () with
          | "next" :: rest -> stage_of rest
          | _ -> raise (Malformed "bad next line")
        in
        let nlines =
          match words () with
          | [ "exec"; n ] -> int_exn n
          | _ -> raise (Malformed "bad exec line")
        in
        if nlines < 0 then raise (Malformed "negative exec length");
        let exec_buf = Buffer.create 4096 in
        for _ = 1 to nlines do
          Buffer.add_string exec_buf (next ());
          Buffer.add_char exec_buf '\n'
        done;
        let p_snapshot = Buffer.contents exec_buf in
        (* The embedded engine snapshot carries its own magic and CRC —
           validate it now so a damaged one classifies the whole store
           entry as corrupt instead of failing at resume time. *)
        (match Tpdbt_dbt.Exec_snapshot.of_string p_snapshot with
        | Tpdbt_dbt.Exec_snapshot.Snapshot _ -> ()
        | Tpdbt_dbt.Exec_snapshot.Stale_version line ->
            raise (Malformed ("embedded snapshot is stale: " ^ line))
        | Tpdbt_dbt.Exec_snapshot.Corrupt reason ->
            raise (Malformed ("embedded snapshot rejected: " ^ reason)));
        finish_checks ();
        Valid
          (Suspended
             {
               Runner.p_bench = spec;
               p_thresholds = labels;
               p_done;
               p_next;
               p_snapshot;
             })
    | k -> raise (Malformed (Printf.sprintf "unknown kind %S" k))
  with Malformed reason -> Corrupt reason

let split_line s pos =
  match String.index_from_opt s pos '\n' with
  | None -> None
  | Some i -> Some (String.sub s pos (i - pos), i + 1)

let data_of_string ?thresholds spec text =
  if String.trim text = "" then Corrupt "empty file"
  else
    match split_line text 0 with
    | None -> Corrupt "missing newline after magic"
    | Some (line1, p1) -> (
        if String.equal line1 magic then
          match split_line text p1 with
          | None -> Corrupt "missing crc header"
          | Some (line2, p2) -> (
              match String.split_on_char ' ' line2 with
              | [ "crc"; hex; len ] -> (
                  match int_of_string_opt len with
                  | None -> Corrupt "malformed crc header"
                  | Some len when len < 0 -> Corrupt "malformed crc header"
                  | Some len ->
                      let avail = String.length text - p2 in
                      if avail < len then
                        Corrupt
                          (Printf.sprintf "truncated: %d of %d payload bytes"
                             avail len)
                      else if avail > len then
                        Corrupt
                          (Printf.sprintf
                             "trailing garbage: %d bytes past the payload"
                             (avail - len))
                      else
                        let payload = String.sub text p2 len in
                        let actual = crc_hex payload in
                        if not (String.equal actual hex) then
                          Corrupt
                            (Printf.sprintf "crc mismatch: header %s, payload %s"
                               hex actual)
                        else parse_payload ?expect_thresholds:thresholds spec payload
                  )
              | _ -> Corrupt "malformed crc header")
        else if
          String.length line1 >= String.length magic_prefix
          && String.equal (String.sub line1 0 (String.length magic_prefix))
               magic_prefix
        then Stale_version line1
        else Corrupt "unrecognised header")

(* ---- files ------------------------------------------------------------- *)

let path ~dir spec = Filename.concat dir (spec.Spec.name ^ ".ckpt")

let write_atomic ~dir final text =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let tmp = final ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc text;
      (* Crash consistency: the payload must be durable before the
         rename publishes it, or a power cut can leave a complete-
         looking file full of zeroes. *)
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp final;
  (* The rename itself lives in the directory: without fsyncing it, a
     power cut can forget the new name (or resurrect the old file)
     even though the data blocks are safe.  Directories cannot be
     opened for writing; O_RDONLY is the documented way to fsync one.
     Filesystems that refuse (EINVAL and friends) get the rename's
     usual eventual durability — no worse than before. *)
  (match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ()))

let save ~dir (d : Runner.data) =
  write_atomic ~dir (path ~dir d.Runner.bench) (data_to_string d)

(* A mid-run snapshot lives in the same per-benchmark slot the
   finished result will occupy: the file monotonically progresses
   suspended -> ... -> suspended -> finished, and a crash at any point
   leaves the previous (complete, CRC-guarded) state. *)
let save_suspended ~dir (p : Runner.partial) =
  write_atomic ~dir (path ~dir p.Runner.p_bench) (partial_to_string p)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let classify ?(thresholds = Suite.thresholds) ~dir spec =
  let file = path ~dir spec in
  if not (Sys.file_exists file) then Missing
  else
    match read_file file with
    | text -> data_of_string ~thresholds spec text
    | exception Sys_error reason -> Corrupt reason

let load ?thresholds ~dir spec =
  match classify ?thresholds ~dir spec with
  | Valid (Finished d) -> Some d
  | _ -> None

let load_suspended ?thresholds ~dir spec =
  match classify ?thresholds ~dir spec with
  | Valid (Suspended p) -> Some p
  | _ -> None

let hooks ?thresholds ?(on_bad = fun _ _ -> ()) ~dir () =
  ( (fun d -> save ~dir d),
    fun spec ->
      match classify ?thresholds ~dir spec with
      | Valid (Finished d) -> Some d
      | Valid (Suspended _) ->
          (* healthy mid-run state, not a finished result: the
             suspended-resume path owns it *)
          None
      | Missing -> None
      | Stale_version line ->
          on_bad spec ("stale checkpoint version: " ^ line);
          None
      | Corrupt reason ->
          on_bad spec reason;
          None )

(* Wire the suspend/resume plumbing for one sweep call: where mid-run
   snapshots land ([on_snapshot]) and where resumable state comes from
   ([load_suspended], gated on [resume]). *)
let snapshot_hooks ?thresholds ?on_snapshot_saved ~resume ~dir () =
  let on_snapshot (p : Runner.partial) =
    save_suspended ~dir p;
    match on_snapshot_saved with
    | Some f -> f p.Runner.p_bench.Spec.name
    | None -> ()
  in
  let load_suspended spec =
    if resume then load_suspended ?thresholds ~dir spec else None
  in
  (on_snapshot, load_suspended)

let run_many ?thresholds ?max_steps ?deadline ?snapshot_every
    ?suspend_on_deadline ?(resume_suspended = true) ?on_snapshot_saved
    ?progress ~dir benches =
  let save, load = hooks ?thresholds ~dir () in
  let on_snapshot, load_suspended =
    snapshot_hooks ?thresholds ?on_snapshot_saved ~resume:resume_suspended
      ~dir ()
  in
  Runner.run_many ?thresholds ?max_steps ?deadline ?snapshot_every
    ?suspend_on_deadline ~on_snapshot ~load_suspended ?progress ~save ~load
    benches

let run_many_par ?thresholds ?max_steps ?deadline ?snapshot_every
    ?suspend_on_deadline ?(resume_suspended = true) ?on_snapshot_saved ?jobs
    ?progress ?sink ?metrics ?report ~dir benches =
  let save, load = hooks ?thresholds ~dir () in
  let on_snapshot, load_suspended =
    snapshot_hooks ?thresholds ?on_snapshot_saved ~resume:resume_suspended
      ~dir ()
  in
  Runner.run_many_par ?thresholds ?max_steps ?deadline ?snapshot_every
    ?suspend_on_deadline ~on_snapshot ~load_suspended ?jobs ?progress ?sink
    ?metrics ?report ~save ~load benches

let run_many_supervised ?thresholds ?max_steps ?deadline ?snapshot_every
    ?suspend_on_deadline ?(resume_suspended = true) ?on_snapshot_saved ?jobs
    ?policy ?progress ?sink ?metrics ?report ?run_task ~dir benches =
  let module Tel = Tpdbt_telemetry in
  let corrupt = ref [] in
  let seq = ref 0 in
  let on_bad (spec : Spec.t) reason =
    corrupt := (spec.Spec.name, reason) :: !corrupt;
    incr seq;
    Option.iter
      (fun s ->
        s.Tel.Sink.emit ~step:!seq
          (Tel.Event.Checkpoint_corrupt { bench = spec.Spec.name; reason }))
      sink;
    Option.iter
      (fun m ->
        Tel.Metrics.incr (Tel.Metrics.counter m "checkpoint.corrupt"))
      metrics
  in
  let save, load = hooks ?thresholds ~on_bad ~dir () in
  let on_snapshot, load_suspended =
    snapshot_hooks ?thresholds ?on_snapshot_saved ~resume:resume_suspended
      ~dir ()
  in
  let sweep, supervision =
    Runner.run_many_supervised ?thresholds ?max_steps ?deadline
      ?snapshot_every ?suspend_on_deadline ~on_snapshot ~load_suspended ?jobs
      ?policy ?progress ?sink ?metrics ?report ?run_task ~save ~load benches
  in
  (sweep, { supervision with Runner.corrupt = List.rev !corrupt })
