(** Sweep runner: executes one benchmark under every experimental
    configuration of the paper's methodology (§2).

    For each benchmark it performs:
    - one profiling-only run with the reference input (AVEP),
    - one profiling-only run with the training input (INIP(train)),
    - one two-phase run per retranslation threshold (INIP(T)),

    then compares each INIP(T) against AVEP ({!Tpdbt_profiles.Metrics})
    and INIP(train) against AVEP. *)

type threshold_run = {
  label : string;  (** paper-equivalent label, e.g. "2k" *)
  scaled : int;  (** the actual threshold used *)
  result : Tpdbt_dbt.Engine.result;
  comparison : Tpdbt_profiles.Metrics.comparison;
}

type data = {
  bench : Tpdbt_workloads.Spec.t;
  avep : Tpdbt_dbt.Engine.result;
  train : Tpdbt_dbt.Engine.result;
  train_flat : Tpdbt_profiles.Metrics.flat;
  train_regions : Tpdbt_profiles.Metrics.comparison;
      (** regions formed {e offline} in the training profile
          ({!Tpdbt_profiles.Offline_regions}) compared against AVEP —
          supplies the Sd.CP(train) / Sd.LP(train) reference the paper
          lists as future work. *)
  runs : threshold_run list;
}

val run_benchmark :
  ?thresholds:(string * int) list ->
  ?max_steps:int ->
  ?deadline:int ->
  Tpdbt_workloads.Spec.t ->
  data
(** Thresholds default to {!Tpdbt_workloads.Suite.thresholds}.  Runs are
    deterministic (fixed seeds from the spec).  [max_steps] overrides
    each constituent run's (non-fatal) step budget; [deadline] arms the
    supervisor's (fatal) cooperative watchdog — see
    {!Tpdbt_dbt.Engine.config}.
    @raise Tpdbt_dbt.Error.Error if any constituent run ends with a
    {e fatal} typed error (guest trap, exhausted recovery).  A run that
    merely blows its step budget ([Limit_exceeded], the one non-fatal
    error) is kept as a partial run — several ref workloads
    legitimately outlive the default budget. *)

(** {2 Suspend / resume}

    A benchmark is a fixed sequence of engine runs ("stages"): the AVEP
    profile, the training profile, then one optimised run per
    threshold.  The suspension machinery works over this sequence: a
    mid-run snapshot is the finished stages plus the in-flight engine's
    serialized image ({!Tpdbt_dbt.Exec_snapshot}), and resuming a
    {!partial} then running to completion produces a {!data} — and
    hence checkpoint bytes — identical to an uninterrupted run's. *)

type stage =
  | Avep
  | Train
  | Threshold of string * int  (** label, scaled threshold *)

val stage_label : stage -> string
(** ["avep"], ["train"], or the threshold label. *)

type partial = {
  p_bench : Tpdbt_workloads.Spec.t;
  p_thresholds : (string * int) list;
  p_done : (stage * Tpdbt_dbt.Engine.result) list;
      (** finished stages, in stage order *)
  p_next : stage;  (** the stage the snapshot interrupts *)
  p_snapshot : string;  (** {!Tpdbt_dbt.Exec_snapshot.to_string} text *)
}

val run_benchmark_result :
  ?thresholds:(string * int) list ->
  ?max_steps:int ->
  ?deadline:int ->
  ?snapshot_every:int ->
  ?suspend_on_deadline:bool ->
  ?on_snapshot:(partial -> unit) ->
  ?resume:partial ->
  Tpdbt_workloads.Spec.t ->
  (data, Tpdbt_dbt.Error.t) result
(** Like {!run_benchmark} but failures stay values — the form sweeps
    use to isolate a failing benchmark without losing the others.

    [snapshot_every n] (default 0 = off) publishes a {!partial} to
    [on_snapshot] roughly every [n] guest instructions of the in-flight
    stage, then {e continues}; the final result is byte-identical to a
    run without the trigger.  [suspend_on_deadline] (default false)
    turns a blown [deadline] into a parked benchmark: the last state is
    published to [on_snapshot] and the call returns
    [Error (Suspended _)] — a {e non-fatal} error marking work to
    resume, not a failure.  [resume] continues from a previously
    published {!partial}: finished stages are reused as recorded, the
    interrupted stage continues from its engine image, and the rest run
    normally.  A damaged or mismatched [resume] (wrong benchmark,
    different thresholds, corrupt or stale snapshot text, config or
    program digest mismatch) yields [Error (Io_error _)] — never a
    wrong result. *)

val assemble :
  Tpdbt_workloads.Spec.t ->
  Tpdbt_dbt.Engine.result ->
  Tpdbt_dbt.Engine.result ->
  (string * int * Tpdbt_dbt.Engine.result) list ->
  data
(** [assemble bench avep train runs] rebuilds the derived comparisons
    from raw engine results.  Derivation is pure, so a {!data} restored
    from checkpointed raw runs is identical to one computed live —
    the property checkpoint resume ({!Checkpoint}) relies on. *)

type cache_point = {
  policy : Tpdbt_dbt.Code_cache.policy;
  frac : float;  (** capacity as a fraction of [footprint] *)
  capacity : int;  (** the actual budget, in translated instructions *)
  bounded : Tpdbt_dbt.Engine.result;  (** the run under that budget *)
}

type cache_data = {
  cache_bench : Tpdbt_workloads.Spec.t;
  cache_threshold : int;
  baseline : Tpdbt_dbt.Engine.result;  (** unbounded-cache run *)
  footprint : int;
      (** the baseline's peak cache occupancy (translated guest
          instructions) — the benchmark's full translated footprint *)
  points : cache_point list;  (** grouped by policy, then fraction *)
}

val run_cache_sweep :
  ?jobs:int ->
  ?threshold:int ->
  ?policies:Tpdbt_dbt.Code_cache.policy list ->
  ?fracs:float list ->
  ?shadow_sample:int ->
  ?max_steps:int ->
  Tpdbt_workloads.Spec.t ->
  cache_data
(** Fig.-17-style cache-size sweep: one unbounded baseline run, then
    one bounded run per (policy, capacity fraction) with the capacity
    set to [frac x footprint] (at least 1).  Defaults: threshold 20,
    all three policies, fractions 1/8, 1/4, 1/2, 1, shadow oracle off.
    Guest behaviour (outputs, steps) is invariant across all points;
    only the cycle cost moves.  Never raises: inspect each
    [result.error].

    [jobs] > 1 runs the (policy, fraction) points on a
    {!Tpdbt_parallel.Pool} of that many worker domains after the
    baseline completes; [points] keeps the canonical policy-major
    order and every point's result is identical to the sequential
    sweep's (each point is an isolated engine run with fixed seeds).
    Default 1 (sequential, no domain spawned). *)

type status =
  | Started  (** about to run *)
  | Finished  (** completed cleanly (after [save], if any) *)
  | Failed of Tpdbt_dbt.Error.t  (** isolated per-benchmark failure *)
  | Resumed  (** restored from a checkpoint; not re-run *)
  | Quarantined of string
      (** supervised sweeps only: the task was poisoned (retry budget
          exhausted or circuit breaker opened) *)
  | Suspended
      (** parked on a resumable mid-run snapshot (deadline suspension);
          appears in [failures] with {!Tpdbt_dbt.Error.Suspended} *)

type failure = { failed : Tpdbt_workloads.Spec.t; error : Tpdbt_dbt.Error.t }

type sweep = { data : data list; failures : failure list }
(** Both in input order; a benchmark appears in exactly one list. *)

val suspended_failure : failure -> bool
(** [true] iff the failure is a parked, resumable suspension rather
    than a broken benchmark. *)

val status_name : status -> string
(** ["started"], ["ok"], ["failed"], ["resumed"], ["poisoned"],
    ["suspended"]. *)

val run_many :
  ?thresholds:(string * int) list ->
  ?max_steps:int ->
  ?deadline:int ->
  ?snapshot_every:int ->
  ?suspend_on_deadline:bool ->
  ?on_snapshot:(partial -> unit) ->
  ?load_suspended:(Tpdbt_workloads.Spec.t -> partial option) ->
  ?progress:(string -> status -> unit) ->
  ?save:(data -> unit) ->
  ?load:(Tpdbt_workloads.Spec.t -> data option) ->
  Tpdbt_workloads.Spec.t list ->
  sweep
(** Sweep over benchmarks with per-benchmark failure isolation: a run
    that ends with a typed error lands in [failures] and the sweep
    continues.  [progress] is called with the benchmark name as each
    one starts and again when it finishes (ok / failed / resumed).
    [load] is consulted before running a benchmark — returning [Some]
    skips the run entirely — and [save] receives each freshly computed
    {!data}; wire both to {!Checkpoint.hooks} for resumable sweeps.
    [load_suspended] is consulted for benchmarks [load] does not
    satisfy: a returned {!partial} resumes the benchmark mid-run.  The
    snapshot controls ([snapshot_every], [suspend_on_deadline],
    [on_snapshot]) pass through to {!run_benchmark_result}. *)

val run_many_par :
  ?thresholds:(string * int) list ->
  ?max_steps:int ->
  ?deadline:int ->
  ?snapshot_every:int ->
  ?suspend_on_deadline:bool ->
  ?on_snapshot:(partial -> unit) ->
  ?load_suspended:(Tpdbt_workloads.Spec.t -> partial option) ->
  ?jobs:int ->
  ?progress:(string -> status -> unit) ->
  ?save:(data -> unit) ->
  ?load:(Tpdbt_workloads.Spec.t -> data option) ->
  ?sink:Tpdbt_telemetry.Sink.t ->
  ?metrics:Tpdbt_telemetry.Metrics.t ->
  ?report:(Tpdbt_parallel.Pool.stats -> unit) ->
  Tpdbt_workloads.Spec.t list ->
  sweep
(** {!run_many} over a {!Tpdbt_parallel.Pool} of [jobs] worker domains
    (default {!Tpdbt_parallel.Pool.default_jobs}; [jobs <= 1]
    short-circuits to the sequential {!run_many}, spawning nothing).

    The merged {!sweep} is {e identical} to the sequential one for
    every job count: each benchmark is an isolated engine computation
    with per-spec fixed seeds, results are tagged by task index and
    merged in input order.  Only observability differs — [progress]
    lines arrive in completion order rather than input order.

    Single-writer invariant: [progress], [save], [load], [sink],
    [metrics] and [report] all run on the {e calling} domain (the
    collector).  [load] is consulted for every benchmark before any
    worker starts (resumed benchmarks never become tasks); each [save]
    fires as its benchmark's result arrives, so a sweep killed
    mid-flight resumes exactly like a sequential one.

    [sink] receives [worker.start] / [worker.steal] / [worker.finish]
    events stamped with a scheduler sequence number; [metrics] gains
    the [parallel.speedup] and [parallel.jobs] gauges plus the
    [parallel.steals] / [parallel.tasks] counters; [report] is called
    once with the pool's {!Tpdbt_parallel.Pool.stats}.

    Exception to the single-writer rule: [on_snapshot] runs on the
    {e worker} executing the benchmark.  Each benchmark's suspended
    state has that worker as its only writer until the task completes,
    so per-benchmark files (the checkpoint store) stay race-free. *)

type supervision = {
  sup : Tpdbt_parallel.Supervisor.stats;
  poisoned : (Tpdbt_workloads.Spec.t * string) list;
      (** quarantined benchmarks with the last failure reason, in
          input order; each also appears in the sweep's [failures] *)
  corrupt : (string * string) list;
      (** damaged checkpoints detected during the resume scan, as
          [(bench name, reason)] — filled by
          {!Checkpoint.run_many_supervised}; empty here *)
}

val run_many_supervised :
  ?thresholds:(string * int) list ->
  ?max_steps:int ->
  ?deadline:int ->
  ?snapshot_every:int ->
  ?suspend_on_deadline:bool ->
  ?on_snapshot:(partial -> unit) ->
  ?load_suspended:(Tpdbt_workloads.Spec.t -> partial option) ->
  ?jobs:int ->
  ?policy:Tpdbt_parallel.Supervisor.policy ->
  ?progress:(string -> status -> unit) ->
  ?save:(data -> unit) ->
  ?load:(Tpdbt_workloads.Spec.t -> data option) ->
  ?sink:Tpdbt_telemetry.Sink.t ->
  ?metrics:Tpdbt_telemetry.Metrics.t ->
  ?report:(Tpdbt_parallel.Supervisor.stats -> unit) ->
  ?run_task:
    (task:int ->
    attempt:int ->
    Tpdbt_workloads.Spec.t ->
    (data, Tpdbt_dbt.Error.t) result) ->
  Tpdbt_workloads.Spec.t list ->
  sweep * supervision
(** {!run_many_par} under {!Tpdbt_parallel.Supervisor}: per-task
    deadlines (pass [deadline]), bounded retry with deterministic
    backoff, circuit breakers, and graceful pool degradation.  A
    benchmark whose runs keep failing is {e quarantined} — reported as
    [Quarantined] progress, listed in [supervision.poisoned] and in
    the sweep's [failures] (with its last fatal typed error when one
    was produced) — instead of aborting anything.

    The merged sweep and the supervision counts ([attempts], [retries],
    [poisoned], [crashes]) are identical at every job count; every
    callback runs on the calling domain.  [sink] additionally receives
    [supervisor.retry] / [supervisor.giveup] / [breaker.open] /
    [worker.lost] / [pool.degraded] events (scheduler-sequence
    stamped), and [metrics] gains [supervisor.*] counters plus the
    [supervisor.task_seconds] latency histogram.

    [run_task] replaces the benchmark execution itself (defaulting to
    {!run_benchmark_result}) with the task index and 1-based attempt
    number — the chaos harness's injection point: deterministic fault
    plans key on [(task, attempt)], so retries genuinely re-execute.

    A task that returns [Error (Suspended _)] is {e not} retried: the
    benchmark is parked on its on-disk snapshot ([Suspended] progress)
    and lands in [failures] for the caller to resume later.  The
    default [run_task] consults [load_suspended] on {e every} attempt,
    so a retry of a task whose earlier attempt crashed after a mid-run
    snapshot continues from that snapshot instead of restarting. *)

val run_ref :
  ?sink:Tpdbt_telemetry.Sink.t ->
  Tpdbt_workloads.Spec.t ->
  config:Tpdbt_dbt.Engine.config ->
  Tpdbt_dbt.Engine.result
(** One reference-input run under an arbitrary engine configuration.
    [sink] overrides the configuration's telemetry sink.  Never raises:
    inspect [result.error] — fault campaigns need the partial result of
    a failed run. *)

val run_avep : Tpdbt_workloads.Spec.t -> Tpdbt_dbt.Engine.result
(** Profiling-only reference-input run (the AVEP profile).
    @raise Tpdbt_dbt.Error.Error if the run ends with a typed error. *)

val run_traced :
  ?limit:int ->
  ?extra_sinks:Tpdbt_telemetry.Sink.t list ->
  Tpdbt_workloads.Spec.t ->
  config:Tpdbt_dbt.Engine.config ->
  Tpdbt_dbt.Engine.result
  * Tpdbt_telemetry.Sink.buffer
  * Tpdbt_telemetry.Metrics.t
(** One fully-instrumented reference-input run: buffers the event
    stream (at most [limit] events, {!Tpdbt_telemetry.Sink.memory}'s
    default otherwise), aggregates the standard event metrics
    ({!Tpdbt_telemetry.Sink.collect}) and the run's [perf.*] counters
    ({!Tpdbt_dbt.Perf_model.record}) into a fresh registry, and closes
    every sink.  [extra_sinks] (e.g. a streaming JSONL writer) receive
    the same events; they are closed too.  Powers [tpdbt trace]. *)

val run_custom :
  ?sink:Tpdbt_telemetry.Sink.t ->
  Tpdbt_workloads.Spec.t ->
  config:Tpdbt_dbt.Engine.config ->
  Tpdbt_dbt.Engine.result * Tpdbt_dbt.Engine.result * Tpdbt_profiles.Metrics.comparison
(** One reference-input run under an arbitrary engine configuration:
    [(result, avep_result, comparison_vs_avep)].  Used by the ablation
    studies.  [sink], if given, observes the custom run (not the AVEP
    reference run).
    @raise Tpdbt_dbt.Error.Error if either run ends with a typed
    error. *)
