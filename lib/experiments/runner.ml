module Engine = Tpdbt_dbt.Engine
module Error = Tpdbt_dbt.Error
module Spec = Tpdbt_workloads.Spec
module Suite = Tpdbt_workloads.Suite
module Metrics = Tpdbt_profiles.Metrics

type threshold_run = {
  label : string;
  scaled : int;
  result : Engine.result;
  comparison : Metrics.comparison;
}

type data = {
  bench : Spec.t;
  avep : Engine.result;
  train : Engine.result;
  train_flat : Metrics.flat;
  train_regions : Metrics.comparison;
  runs : threshold_run list;
}

(* Sweep-level step budgets: [max_steps] caps runaway synthetic
   workloads (non-fatal, partial run kept), [deadline] is the
   supervisor's watchdog (fatal — see {!Tpdbt_dbt.Error}). *)
let override_budget ?max_steps ?deadline (config : Engine.config) =
  let config =
    match max_steps with
    | None -> config
    | Some m -> { config with Engine.max_steps = m }
  in
  match deadline with
  | None -> config
  | Some d -> { config with Engine.deadline = Some d }

let ( let* ) = Result.bind

(* Derived data (comparisons, flat metrics, offline regions) is a pure
   function of the three raw runs — checkpoint resume stores only the
   raw runs and rebuilds the rest through this. *)
let assemble bench avep train raw_runs =
  let train_flat =
    Metrics.compare_flat ~predicted:train.Engine.snapshot
      ~avep:avep.Engine.snapshot
  in
  let train_regions =
    Tpdbt_profiles.Offline_regions.train_cp_lp ~train:train.Engine.snapshot
      ~avep:avep.Engine.snapshot
  in
  let runs =
    List.map
      (fun (label, scaled, result) ->
        let comparison =
          Metrics.compare_snapshots ~inip:result.Engine.snapshot
            ~avep:avep.Engine.snapshot
        in
        { label; scaled; result; comparison })
      raw_runs
  in
  { bench; avep; train; train_flat; train_regions; runs }

(* A benchmark is a fixed sequence of engine runs ("stages"): the AVEP
   and training profiles, then one optimised run per threshold.  The
   suspend/resume machinery is expressed over this sequence — a
   mid-run snapshot records the finished stages plus the in-flight
   engine's serialized image. *)
type stage = Avep | Train | Threshold of string * int

let stage_label = function
  | Avep -> "avep"
  | Train -> "train"
  | Threshold (label, _) -> label

type partial = {
  p_bench : Spec.t;
  p_thresholds : (string * int) list;
  p_done : (stage * Engine.result) list;  (* finished stages, in order *)
  p_next : stage;  (* the stage the snapshot interrupts *)
  p_snapshot : string;  (* Exec_snapshot.to_string of the engine *)
}

module Exec_snapshot = Tpdbt_dbt.Exec_snapshot

let run_benchmark_result ?(thresholds = Suite.thresholds) ?max_steps ?deadline
    ?(snapshot_every = 0) ?(suspend_on_deadline = false) ?on_snapshot ?resume
    bench =
  let budget = override_budget ?max_steps ?deadline in
  let arm config =
    if snapshot_every = 0 && not suspend_on_deadline then config
    else { config with Engine.snapshot_every; suspend_on_deadline }
  in
  let program, ref_input, train_input = Spec.build bench in
  let stages =
    Avep :: Train :: List.map (fun (l, s) -> Threshold (l, s)) thresholds
  in
  let stage_config stage =
    arm
      (budget
         (match stage with
         | Avep | Train -> Engine.profiling_only
         | Threshold (_, scaled) -> Engine.config ~threshold:scaled ()))
  in
  let stage_input = function
    | Train -> train_input
    | Avep | Threshold _ -> ref_input
  in
  let* () =
    match resume with
    | Some p when not (String.equal p.p_bench.Spec.name bench.Spec.name) ->
        Error
          (Error.Io_error
             (Printf.sprintf "suspended state is for benchmark %s, not %s"
                p.p_bench.Spec.name bench.Spec.name))
    | Some p when p.p_thresholds <> thresholds ->
        Error
          (Error.Io_error
             "suspended state recorded under a different threshold list")
    | _ -> Ok ()
  in
  (* Drive one stage to completion.  A snapshot-trigger suspension
     publishes the partial state and keeps running the same engine; a
     deadline suspension publishes it and stops the whole benchmark —
     the caller resumes it later, from exactly this point. *)
  let exec done_ stage =
    let config = stage_config stage in
    let input = stage_input stage in
    let aprogram = Spec.apply_input program input in
    let* engine =
      match resume with
      | Some p when p.p_next = stage -> (
          match Exec_snapshot.of_string p.p_snapshot with
          | Exec_snapshot.Snapshot parsed -> (
              match Exec_snapshot.restore ~config ~program:aprogram parsed with
              | Ok t -> Ok t
              | Error reason ->
                  Error (Error.Io_error ("snapshot rejected: " ^ reason)))
          | Exec_snapshot.Stale_version line ->
              Error (Error.Io_error ("stale snapshot version: " ^ line))
          | Exec_snapshot.Corrupt reason ->
              Error (Error.Io_error ("corrupt snapshot: " ^ reason)))
      | _ -> Ok (Engine.create ~config ~seed:input.Spec.seed aprogram)
    in
    let rec go () =
      let result = Engine.run engine in
      match result.Engine.error with
      | Some (Error.Suspended { deadline = hard; _ } as e) ->
          (match on_snapshot with
          | Some f ->
              f
                {
                  p_bench = bench;
                  p_thresholds = thresholds;
                  p_done = List.rev done_;
                  p_next = stage;
                  p_snapshot =
                    Exec_snapshot.to_string ~config ~program:aprogram
                      (Engine.capture engine);
                }
          | None -> ());
          if hard then Error e else go ()
      | Some e when Error.fatal e -> Error e
      | _ -> Ok result
    in
    go ()
  in
  let rec stages_loop done_ = function
    | [] -> Ok (List.rev done_)
    | stage :: tl -> (
        match
          Option.bind resume (fun p -> List.assoc_opt stage p.p_done)
        with
        | Some result -> stages_loop ((stage, result) :: done_) tl
        | None ->
            let* result = exec done_ stage in
            stages_loop ((stage, result) :: done_) tl)
  in
  let* all = stages_loop [] stages in
  match all with
  | (Avep, avep) :: (Train, train) :: rest ->
      let raw_runs =
        List.map
          (function
            | Threshold (label, scaled), r -> (label, scaled, r)
            | (Avep | Train), _ -> assert false)
          rest
      in
      Ok (assemble bench avep train raw_runs)
  | _ -> assert false

let run_benchmark ?thresholds ?max_steps ?deadline bench =
  match run_benchmark_result ?thresholds ?max_steps ?deadline bench with
  | Ok data -> data
  | Error e -> raise (Error.Error e)

let run_ref ?sink bench ~config =
  let config =
    match sink with None -> config | Some sink -> { config with Engine.sink }
  in
  let program, ref_input, _train_input = Spec.build bench in
  let program = Spec.apply_input program ref_input in
  let engine = Engine.create ~config ~seed:ref_input.Spec.seed program in
  Engine.run engine

let run_avep bench =
  let result = run_ref bench ~config:Engine.profiling_only in
  match result.Engine.error with
  | None -> result
  | Some e -> raise (Error.Error e)

(* The standard observability bundle: buffer the event stream, derive
   metrics from it, and fold the run's perf-model counters into the
   same registry.  Extra sinks (e.g. a streaming JSONL writer) ride
   along via [extra_sinks]. *)
let run_traced ?limit ?(extra_sinks = []) bench ~config =
  let module Tel = Tpdbt_telemetry in
  let metrics = Tel.Metrics.create () in
  let mem_sink, buffer = Tel.Sink.memory ?limit () in
  let collector = Tel.Sink.collect ~into:metrics in
  let sink = Tel.Sink.tee (mem_sink :: collector :: extra_sinks) in
  let result = run_ref ~sink bench ~config in
  sink.Tel.Sink.close ();
  Tpdbt_dbt.Perf_model.record result.Engine.counters metrics;
  (result, buffer, metrics)

let run_custom ?sink bench ~config =
  let avep = run_avep bench in
  let result = run_ref ?sink bench ~config in
  (match result.Engine.error with
  | None -> ()
  | Some e -> raise (Error.Error e));
  let comparison =
    Metrics.compare_snapshots ~inip:result.Engine.snapshot
      ~avep:avep.Engine.snapshot
  in
  (result, avep, comparison)

(* ---- cache-size sweep (Fig. 17-style, cycles vs cache budget) -------- *)

type cache_point = {
  policy : Tpdbt_dbt.Code_cache.policy;
  frac : float;
  capacity : int;
  bounded : Engine.result;
}

type cache_data = {
  cache_bench : Spec.t;
  cache_threshold : int;
  baseline : Engine.result;
  footprint : int;
  points : cache_point list;
}

let run_cache_sweep ?(jobs = 1) ?(threshold = 20)
    ?(policies = Tpdbt_dbt.Code_cache.all_policies)
    ?(fracs = [ 0.125; 0.25; 0.5; 1.0 ]) ?(shadow_sample = 0) ?max_steps bench
    =
  let budget = override_budget ?max_steps in
  (* Unbounded baseline: its peak occupancy is the benchmark's full
     translated footprint, the unit the capacity fractions scale.  It
     must run first — every bounded capacity derives from it — so only
     the (policy, frac) points fan out across domains. *)
  let baseline = run_ref bench ~config:(budget (Engine.config ~threshold ())) in
  let footprint =
    max 1 baseline.Engine.counters.Tpdbt_dbt.Perf_model.cache_peak_instrs
  in
  let combos =
    List.concat_map (fun p -> List.map (fun f -> (p, f)) fracs) policies
  in
  let point (policy, frac) =
    let capacity = max 1 (int_of_float (frac *. float_of_int footprint)) in
    let config =
      budget
        (Engine.config ~threshold ~cache_capacity:capacity
           ~cache_policy:policy ~shadow_sample ())
    in
    { policy; frac; capacity; bounded = run_ref bench ~config }
  in
  let points =
    if jobs <= 1 then List.map point combos
    else
      let results, _ =
        Tpdbt_parallel.Pool.map ~jobs point (Array.of_list combos)
      in
      Array.to_list results
  in
  { cache_bench = bench; cache_threshold = threshold; baseline; footprint; points }

type status =
  | Started
  | Finished
  | Failed of Error.t
  | Resumed
  | Quarantined of string
  | Suspended

type failure = { failed : Spec.t; error : Error.t }
type sweep = { data : data list; failures : failure list }

let status_name = function
  | Started -> "started"
  | Finished -> "ok"
  | Failed _ -> "failed"
  | Resumed -> "resumed"
  | Quarantined _ -> "poisoned"
  | Suspended -> "suspended"

(* A benchmark that stopped on a resumable suspension is parked, not
   broken: it lands in [failures] carrying [Error.Suspended] so the
   sweep stays honest about incomplete data, but progress reporting
   and the supervisor treat it as "come back later", never as a
   failure to retry. *)
let suspended_failure (f : failure) =
  match f.error with Error.Suspended _ -> true | _ -> false

(* Sequential reference path.  [run_many_par] must produce the same
   merged sweep (and, via [save], the same checkpoint bytes) for every
   job count — keep the two in lockstep. *)
let run_many ?thresholds ?max_steps ?deadline ?snapshot_every
    ?suspend_on_deadline ?on_snapshot ?load_suspended
    ?(progress = fun _ _ -> ()) ?save ?load benches =
  let data = ref [] and failures = ref [] in
  List.iter
    (fun bench ->
      let name = bench.Spec.name in
      match Option.bind load (fun f -> f bench) with
      | Some d ->
          progress name Resumed;
          data := d :: !data
      | None -> (
          progress name Started;
          let resume = Option.bind load_suspended (fun f -> f bench) in
          match
            run_benchmark_result ?thresholds ?max_steps ?deadline
              ?snapshot_every ?suspend_on_deadline ?on_snapshot ?resume bench
          with
          | Ok d ->
              Option.iter (fun f -> f d) save;
              progress name Finished;
              data := d :: !data
          | Error e ->
              progress name
                (match e with Error.Suspended _ -> Suspended | _ -> Failed e);
              failures := { failed = bench; error = e } :: !failures))
    benches;
  { data = List.rev !data; failures = List.rev !failures }

module Pool = Tpdbt_parallel.Pool

(* Worker scheduling events, forwarded to a telemetry sink from the
   collector domain.  The scheduler runs outside any engine, so the
   stamp is a scheduler sequence number rather than a guest clock.
   Each task is also bracketed in a per-worker span ([worker<i>]) so
   the profiler and the span metrics see pool busy time; the span's
   wall clock is the task's measured seconds, its allocation deltas
   are unknown (the work happened on another domain) and stay 0. *)
let worker_sink_events sink =
  let module Tel = Tpdbt_telemetry in
  let seq = ref 0 in
  let emit event =
    incr seq;
    sink.Tel.Sink.emit ~step:!seq event
  in
  let span worker = "worker" ^ string_of_int worker in
  fun (e : Pool.event) ->
    match e with
    | Pool.Start { worker; task } ->
        emit (Tel.Event.Worker_start { worker; task });
        emit (Tel.Event.Span_begin { span = span worker })
    | Pool.Steal { worker; victim; task } ->
        emit (Tel.Event.Worker_steal { worker; victim; task })
    | Pool.Finish { worker; task; seconds } ->
        emit
          (Tel.Event.Span_end
             {
               span = span worker;
               wall_ns = int_of_float (seconds *. 1e9);
               minor_words = 0;
               major_words = 0;
             });
        emit (Tel.Event.Worker_finish { worker; task })

let record_parallel_stats metrics (stats : Pool.stats) =
  let module Tel = Tpdbt_telemetry in
  Tel.Metrics.set (Tel.Metrics.gauge metrics "parallel.speedup")
    (Pool.speedup stats);
  Tel.Metrics.set (Tel.Metrics.gauge metrics "parallel.jobs")
    (float_of_int stats.Pool.jobs);
  Tel.Metrics.add (Tel.Metrics.counter metrics "parallel.steals")
    stats.Pool.steals;
  Tel.Metrics.add (Tel.Metrics.counter metrics "parallel.tasks")
    stats.Pool.tasks;
  Tel.Metrics.set
    (Tel.Metrics.gauge metrics "parallel.busy_seconds")
    stats.Pool.busy;
  Tel.Metrics.set
    (Tel.Metrics.gauge metrics "parallel.idle_seconds")
    (Float.max 0.0
       ((float_of_int stats.Pool.jobs *. stats.Pool.elapsed) -. stats.Pool.busy))

let run_many_par ?thresholds ?max_steps ?deadline ?snapshot_every
    ?suspend_on_deadline ?on_snapshot ?load_suspended ?jobs
    ?(progress = fun _ _ -> ()) ?save ?load ?sink ?metrics ?report benches =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  if jobs <= 1 then
    run_many ?thresholds ?max_steps ?deadline ?snapshot_every
      ?suspend_on_deadline ?on_snapshot ?load_suspended ~progress ?save ?load
      benches
  else begin
    (* Resume scan up front, on the collector domain: checkpoint reads
       never race the workers, and a resumed benchmark never becomes a
       task at all.  Suspended mid-run state is scanned here too — a
       worker then continues the engine instead of restarting it. *)
    let entries =
      List.map
        (fun bench ->
          match Option.bind load (fun f -> f bench) with
          | Some d ->
              progress bench.Spec.name Resumed;
              (bench, Some d)
          | None -> (bench, None))
        benches
    in
    let pending =
      Array.of_list
        (List.filter_map
           (fun (b, d) ->
             if d = None then
               Some (b, Option.bind load_suspended (fun f -> f b))
             else None)
           entries)
    in
    let name task = (fst pending.(task)).Spec.name in
    let on_event =
      let forward =
        match sink with None -> fun _ -> () | Some s -> worker_sink_events s
      in
      fun (e : Pool.event) ->
        forward e;
        match e with
        | Pool.Start { task; _ } -> progress (name task) Started
        | Pool.Steal _ | Pool.Finish _ -> ()
    in
    (* Completion arrival order is nondeterministic, but every
       checkpoint [save] happens here, on the collector domain, and
       each file's bytes depend only on its own task's result.
       (Mid-run snapshots are the exception: [on_snapshot] runs on the
       worker, but each benchmark's file has that worker as its only
       writer until the task completes.) *)
    let on_result task = function
      | Ok d ->
          Option.iter (fun f -> f d) save;
          progress (name task) Finished
      | Error (Error.Suspended _) -> progress (name task) Suspended
      | Error e -> progress (name task) (Failed e)
    in
    let results, stats =
      Pool.map ~jobs ~on_event ~on_result
        (fun (bench, resume) ->
          run_benchmark_result ?thresholds ?max_steps ?deadline
            ?snapshot_every ?suspend_on_deadline ?on_snapshot ?resume bench)
        pending
    in
    Option.iter (fun m -> record_parallel_stats m stats) metrics;
    Option.iter (fun f -> f stats) report;
    (* Deterministic merge: walk the benchmarks in input order, pulling
       resumed data or the task result tagged with the next pending
       index — the same [sweep] the sequential path builds. *)
    let next = ref 0 in
    let data = ref [] and failures = ref [] in
    List.iter
      (fun (bench, resumed) ->
        match resumed with
        | Some d -> data := d :: !data
        | None -> (
            let r = results.(!next) in
            incr next;
            match r with
            | Ok d -> data := d :: !data
            | Error e -> failures := { failed = bench; error = e } :: !failures))
      entries;
    { data = List.rev !data; failures = List.rev !failures }
  end

(* ---- supervised sweeps ------------------------------------------------ *)

module Sup = Tpdbt_parallel.Supervisor

type supervision = {
  sup : Sup.stats;
  poisoned : (Spec.t * string) list;
  corrupt : (string * string) list;
}

let task_seconds_buckets =
  [ 0.001; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 30.0; 120.0 ]

(* Supervisor scheduling events → telemetry, stamped like the worker
   events with a per-source sequence number. *)
let supervisor_sink_events sink =
  let module Tel = Tpdbt_telemetry in
  let seq = ref 0 in
  fun (event : Tel.Event.t) ->
    incr seq;
    match sink with
    | None -> ()
    | Some s -> s.Tel.Sink.emit ~step:!seq event

let record_supervision_metrics metrics (s : Sup.stats) =
  let module Tel = Tpdbt_telemetry in
  Tel.Metrics.set (Tel.Metrics.gauge metrics "parallel.jobs")
    (float_of_int s.Sup.jobs);
  Tel.Metrics.add (Tel.Metrics.counter metrics "parallel.tasks") s.Sup.tasks;
  Tel.Metrics.add
    (Tel.Metrics.counter metrics "supervisor.attempts")
    s.Sup.attempts;
  Tel.Metrics.add (Tel.Metrics.counter metrics "supervisor.retries")
    s.Sup.retries;
  Tel.Metrics.add
    (Tel.Metrics.counter metrics "supervisor.poisoned")
    s.Sup.poisoned;
  Tel.Metrics.add (Tel.Metrics.counter metrics "supervisor.crashes")
    s.Sup.crashes

let run_many_supervised ?thresholds ?max_steps ?deadline ?snapshot_every
    ?suspend_on_deadline ?on_snapshot ?load_suspended ?jobs ?policy
    ?(progress = fun _ _ -> ()) ?save ?load ?sink ?metrics ?report ?run_task
    benches =
  let module Tel = Tpdbt_telemetry in
  (* Resume scan up front on the collector, exactly as [run_many_par]:
     resumed benchmarks never become supervised tasks. *)
  let entries =
    List.map
      (fun bench ->
        match Option.bind load (fun f -> f bench) with
        | Some d ->
            progress bench.Spec.name Resumed;
            (bench, Some d)
        | None -> (bench, None))
      benches
  in
  let pending =
    Array.of_list
      (List.filter_map (fun (b, d) -> if d = None then Some b else None) entries)
  in
  let run_task =
    match run_task with
    | Some f -> f
    | None ->
        (* The suspended-state lookup runs per attempt, on the worker:
           a retry of a task whose earlier attempt crashed after a
           mid-run snapshot continues from that snapshot instead of
           restarting.  Only this task writes this benchmark's file,
           so the read cannot race another writer. *)
        fun ~task:_ ~attempt:_ bench ->
          let resume = Option.bind load_suspended (fun f -> f bench) in
          run_benchmark_result ?thresholds ?max_steps ?deadline
            ?snapshot_every ?suspend_on_deadline ?on_snapshot ?resume bench
  in
  (* The last fatal typed error each task produced: a poisoned task's
     entry in [failures] keeps the engine's own diagnosis when there is
     one, rather than flattening it to a string. *)
  let last_error = Array.make (max 1 (Array.length pending)) None in
  let emit = supervisor_sink_events sink in
  let observe_latency =
    match metrics with
    | None -> fun _ -> ()
    | Some m ->
        let h =
          Tel.Metrics.histogram m "supervisor.task_seconds"
            ~buckets:task_seconds_buckets
        in
        fun seconds -> Tel.Metrics.observe h seconds
  in
  let name task = pending.(task).Spec.name in
  (* Every [Attempt] opens a per-task span; exactly one of the
     completion events (done, retry, give-up, breaker, worker lost)
     closes it again, so the span stream stays balanced even for
     failing tasks.  Only the success path knows the attempt's wall
     clock — failure closes carry 0. *)
  let span_label task = "task" ^ string_of_int task in
  let span_begin task = emit (Tel.Event.Span_begin { span = span_label task }) in
  let span_end ?(seconds = 0.0) task =
    emit
      (Tel.Event.Span_end
         {
           span = span_label task;
           wall_ns = int_of_float (seconds *. 1e9);
           minor_words = 0;
           major_words = 0;
         })
  in
  let on_event (e : Sup.event) =
    match e with
    | Sup.Attempt { task; attempt } ->
        span_begin task;
        if attempt = 1 then progress (name task) Started
    | Sup.Task_done { task; seconds; _ } ->
        span_end ~seconds task;
        observe_latency seconds
    | Sup.Retry { task; attempt; backoff; reason } ->
        span_end task;
        emit (Tel.Event.Supervisor_retry { task; attempt; backoff; reason })
    | Sup.Gave_up { task; attempts; reason } ->
        span_end task;
        emit (Tel.Event.Supervisor_give_up { task; attempts; reason });
        progress (name task) (Quarantined reason)
    | Sup.Breaker_opened { task; failures } ->
        span_end task;
        emit (Tel.Event.Breaker_open { task; failures });
        progress (name task) (Quarantined "circuit breaker opened")
    | Sup.Worker_lost { worker; task } ->
        span_end task;
        emit (Tel.Event.Worker_lost { worker; task })
    | Sup.Degraded { live } -> emit (Tel.Event.Pool_degraded { live })
  in
  let failed task = function
    | Ok _ -> None
    | Error (Error.Suspended _) ->
        (* Parked, not failed: the snapshot is on disk and a later
           sweep resumes it — retrying now would just re-suspend. *)
        None
    | Error e ->
        last_error.(task) <- Some e;
        Some (Error.to_string e)
  in
  let on_result task = function
    | Ok d ->
        Option.iter (fun f -> f d) save;
        progress (name task) Finished
    | Error (Error.Suspended _) -> progress (name task) Suspended
    | Error _ -> ()
  in
  let outcomes, stats =
    Sup.run ?jobs ?policy ~failed ~on_event ~on_result
      (fun ~attempt (task, bench) -> run_task ~task ~attempt bench)
      (Array.mapi (fun i b -> (i, b)) pending)
  in
  Option.iter (fun m -> record_supervision_metrics m stats) metrics;
  Option.iter (fun f -> f stats) report;
  let next = ref 0 in
  let data = ref [] and failures = ref [] and poisoned = ref [] in
  List.iter
    (fun (bench, resumed) ->
      match resumed with
      | Some d -> data := d :: !data
      | None -> (
          let task = !next in
          incr next;
          match outcomes.(task) with
          | Sup.Done (Ok d) -> data := d :: !data
          | Sup.Done (Error e) ->
              (* a suspended task resolves here (the classifier lets it
                 through without retry); any other typed error is
                 rejected by the classifier and resolves poisoned *)
              failures := { failed = bench; error = e } :: !failures
          | Sup.Poisoned { reason; _ } ->
              let error =
                match last_error.(task) with
                | Some e -> e
                | None ->
                    Error.Io_error ("supervised task poisoned: " ^ reason)
              in
              poisoned := (bench, reason) :: !poisoned;
              failures := { failed = bench; error } :: !failures))
    entries;
  ( { data = List.rev !data; failures = List.rev !failures },
    {
      sup = stats;
      poisoned = List.rev !poisoned;
      corrupt = [];
    } )
