module Engine = Tpdbt_dbt.Engine
module Spec = Tpdbt_workloads.Spec
module Suite = Tpdbt_workloads.Suite
module Metrics = Tpdbt_profiles.Metrics

type threshold_run = {
  label : string;
  scaled : int;
  result : Engine.result;
  comparison : Metrics.comparison;
}

type data = {
  bench : Spec.t;
  avep : Engine.result;
  train : Engine.result;
  train_flat : Metrics.flat;
  train_regions : Metrics.comparison;
  runs : threshold_run list;
}

let run_input program (input : Spec.input) config =
  let program = Spec.apply_input program input in
  let engine = Engine.create ~config ~seed:input.Spec.seed program in
  let result = Engine.run engine in
  (match result.Engine.trap with
  | None -> ()
  | Some trap ->
      failwith
        (Format.asprintf "benchmark run trapped: %a" Tpdbt_vm.Machine.pp_trap
           trap));
  result

let run_benchmark ?(thresholds = Suite.thresholds) bench =
  let program, ref_input, train_input = Spec.build bench in
  let avep = run_input program ref_input Engine.profiling_only in
  let train = run_input program train_input Engine.profiling_only in
  let train_flat =
    Metrics.compare_flat ~predicted:train.Engine.snapshot
      ~avep:avep.Engine.snapshot
  in
  let train_regions =
    Tpdbt_profiles.Offline_regions.train_cp_lp ~train:train.Engine.snapshot
      ~avep:avep.Engine.snapshot
  in
  let runs =
    List.map
      (fun (label, scaled) ->
        let result =
          run_input program ref_input (Engine.config ~threshold:scaled ())
        in
        let comparison =
          Metrics.compare_snapshots ~inip:result.Engine.snapshot
            ~avep:avep.Engine.snapshot
        in
        { label; scaled; result; comparison })
      thresholds
  in
  { bench; avep; train; train_flat; train_regions; runs }

let run_ref ?sink bench ~config =
  let config =
    match sink with None -> config | Some sink -> { config with Engine.sink }
  in
  let program, ref_input, _train_input = Spec.build bench in
  run_input program ref_input config

let run_avep bench = run_ref bench ~config:Engine.profiling_only

(* The standard observability bundle: buffer the event stream, derive
   metrics from it, and fold the run's perf-model counters into the
   same registry.  Extra sinks (e.g. a streaming JSONL writer) ride
   along via [extra_sinks]. *)
let run_traced ?limit ?(extra_sinks = []) bench ~config =
  let module Tel = Tpdbt_telemetry in
  let metrics = Tel.Metrics.create () in
  let mem_sink, buffer = Tel.Sink.memory ?limit () in
  let collector = Tel.Sink.collect ~into:metrics in
  let sink = Tel.Sink.tee (mem_sink :: collector :: extra_sinks) in
  let result = run_ref ~sink bench ~config in
  sink.Tel.Sink.close ();
  Tpdbt_dbt.Perf_model.record result.Engine.counters metrics;
  (result, buffer, metrics)

let run_custom ?sink bench ~config =
  let avep = run_avep bench in
  let result = run_ref ?sink bench ~config in
  let comparison =
    Metrics.compare_snapshots ~inip:result.Engine.snapshot
      ~avep:avep.Engine.snapshot
  in
  (result, avep, comparison)

let run_many ?thresholds ?(progress = fun _ -> ()) benches =
  List.map
    (fun bench ->
      progress bench.Spec.name;
      run_benchmark ?thresholds bench)
    benches
