module Metrics = Tpdbt_profiles.Metrics
module Spec = Tpdbt_workloads.Spec
module Engine = Tpdbt_dbt.Engine
module Perf_model = Tpdbt_dbt.Perf_model

let labels data =
  match data with
  | [] -> []
  | d :: _ -> List.map (fun r -> r.Runner.label) d.Runner.runs

let of_suite suite data =
  List.filter (fun d -> d.Runner.bench.Spec.suite = suite) data

let mean = function
  | [] -> None
  | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))

(* Average a per-run metric over a benchmark subset, per threshold. *)
let averaged_series subset ~metric =
  match subset with
  | [] -> []
  | first :: _ ->
      List.mapi
        (fun i _ ->
          mean
            (List.filter_map
               (fun d ->
                 match List.nth_opt d.Runner.runs i with
                 | Some run -> Some (metric run)
                 | None -> None)
               subset))
        first.Runner.runs

let train_column subset ~metric =
  mean (List.map (fun d -> metric d.Runner.train_flat) subset)

(* -- Sd.BP / mismatch averages with a train reference column ---------- *)

let averaged_with_train data ~title ~run_metric ~train_metric =
  let cols = "train" :: labels data in
  let table = Table.make ~title ~columns:cols in
  List.fold_left
    (fun table (name, suite) ->
      let subset = of_suite suite data in
      if subset = [] then table
      else
        Table.add_row table name
          (train_column subset ~metric:train_metric
          :: averaged_series subset ~metric:run_metric))
    table
    [ ("int", `Int); ("fp", `Fp) ]

let fig8 data =
  averaged_with_train data
    ~title:"Figure 8: standard deviation of branch probabilities (Sd.BP)"
    ~run_metric:(fun r -> r.Runner.comparison.Metrics.sd_bp)
    ~train_metric:(fun (f : Metrics.flat) -> f.Metrics.sd_bp)

let fig10 data =
  averaged_with_train data
    ~title:"Figure 10: branch probability mismatch rates"
    ~run_metric:(fun r -> r.Runner.comparison.Metrics.bp_mismatch)
    ~train_metric:(fun (f : Metrics.flat) -> f.Metrics.bp_mismatch)

(* -- per-benchmark tables --------------------------------------------- *)

let per_benchmark data ~suite ~title ~run_metric ~train_metric =
  let cols = "train" :: labels data in
  let table = Table.make ~title ~columns:cols in
  List.fold_left
    (fun table d ->
      let train =
        match train_metric with
        | Some metric -> Some (metric d.Runner.train_flat)
        | None -> None
      in
      Table.add_row table d.Runner.bench.Spec.name
        (train :: List.map (fun r -> Some (run_metric r)) d.Runner.runs))
    table (of_suite suite data)

let fig9 data =
  per_benchmark data ~suite:`Int
    ~title:"Figure 9: Sd.BP per SPEC2000 INT benchmark"
    ~run_metric:(fun r -> r.Runner.comparison.Metrics.sd_bp)
    ~train_metric:(Some (fun (f : Metrics.flat) -> f.Metrics.sd_bp))

let fig11 data =
  per_benchmark data ~suite:`Int
    ~title:"Figure 11: BP mismatch rates per INT benchmark"
    ~run_metric:(fun r -> r.Runner.comparison.Metrics.bp_mismatch)
    ~train_metric:(Some (fun (f : Metrics.flat) -> f.Metrics.bp_mismatch))

let fig12 data =
  per_benchmark data ~suite:`Fp
    ~title:"Figure 12: BP mismatch rates per FP benchmark"
    ~run_metric:(fun r -> r.Runner.comparison.Metrics.bp_mismatch)
    ~train_metric:(Some (fun (f : Metrics.flat) -> f.Metrics.bp_mismatch))

(* -- CP / LP averages --------------------------------------------------
   The paper has no train reference here (§2.3): its INIP(train) has no
   regions.  We additionally report a "train*" column computed by
   forming regions OFFLINE in the training profile (Offline_regions) —
   the comparison the paper lists as future work. *)

let averaged_cp_lp data ~title ~run_metric ~train_metric =
  let table = Table.make ~title ~columns:("train*" :: labels data) in
  List.fold_left
    (fun table (name, suite) ->
      let subset = of_suite suite data in
      if subset = [] then table
      else
        let train =
          mean (List.map (fun d -> train_metric d.Runner.train_regions) subset)
        in
        Table.add_row table name
          (train :: averaged_series subset ~metric:run_metric))
    table
    [ ("int", `Int); ("fp", `Fp) ]

let fig13 data =
  averaged_cp_lp data
    ~title:
      "Figure 13: standard deviation of completion probabilities (Sd.CP) \
       [train* = offline-formed regions, a paper future-work extension]"
    ~run_metric:(fun r -> r.Runner.comparison.Metrics.sd_cp)
    ~train_metric:(fun c -> c.Metrics.sd_cp)

let fig14 data =
  averaged_cp_lp data
    ~title:
      "Figure 14: standard deviation of loop-back probabilities (Sd.LP) \
       [train* = offline-formed regions, a paper future-work extension]"
    ~run_metric:(fun r -> r.Runner.comparison.Metrics.sd_lp)
    ~train_metric:(fun c -> c.Metrics.sd_lp)

let fig15 data =
  let table =
    Table.make
      ~title:"Figure 15: loop-back probability (trip-count range) mismatch rate"
      ~columns:(labels data)
  in
  List.fold_left
    (fun table (name, suite) ->
      let subset = of_suite suite data in
      if subset = [] then table
      else
        Table.add_row table name
          (averaged_series subset ~metric:(fun r ->
               r.Runner.comparison.Metrics.lp_mismatch)))
    table
    [ ("int", `Int); ("fp", `Fp) ]

let fig16 data =
  per_benchmark data ~suite:`Int
    ~title:"Figure 16: loop-back mismatch rate per INT benchmark"
    ~run_metric:(fun r -> r.Runner.comparison.Metrics.lp_mismatch)
    ~train_metric:None

(* -- performance and overhead ----------------------------------------- *)

let cycles run = run.Runner.result.Engine.counters.Perf_model.cycles

let relative_performance subset =
  match subset with
  | [] -> []
  | _ ->
      List.mapi
        (fun i _ ->
          mean
            (List.filter_map
               (fun d ->
                 match (d.Runner.runs, List.nth_opt d.Runner.runs i) with
                 | base :: _, Some run ->
                     let b = cycles base and c = cycles run in
                     if c > 0.0 then Some (b /. c) else None
                 | ([] | _ :: _), (Some _ | None) -> None)
               subset))
        (List.hd subset).Runner.runs

let fig17 data =
  let table =
    Table.make
      ~title:
        "Figure 17: relative performance vs retranslation threshold (base = \
         smallest threshold; higher is better)"
      ~columns:(labels data)
  in
  let int_data = of_suite `Int data in
  let no_perl =
    List.filter (fun d -> d.Runner.bench.Spec.name <> "perlbmk") int_data
  in
  let fp_data = of_suite `Fp data in
  let add table name subset =
    if subset = [] then table
    else Table.add_row table name (relative_performance subset)
  in
  let table = add table "int" int_data in
  let table = add table "int no perl" no_perl in
  add table "fp" fp_data

let fig18 data =
  let table =
    Table.make
      ~title:
        "Figure 18: profiling operations, normalised to the training run"
      ~columns:("train" :: labels data)
  in
  let series subset =
    match subset with
    | [] -> []
    | _ ->
        Some 1.0
        :: List.mapi
             (fun i _ ->
               mean
                 (List.filter_map
                    (fun d ->
                      let train_ops =
                        float_of_int d.Runner.train.Engine.profiling_ops
                      in
                      match List.nth_opt d.Runner.runs i with
                      | Some run when train_ops > 0.0 ->
                          Some
                            (float_of_int run.Runner.result.Engine.profiling_ops
                            /. train_ops)
                      | Some _ | None -> None)
                    subset))
             (List.hd subset).Runner.runs
  in
  List.fold_left
    (fun table (name, suite) ->
      let subset = of_suite suite data in
      if subset = [] then table else Table.add_row table name (series subset))
    table
    [ ("int", `Int); ("fp", `Fp) ]

(* Not part of [all]: the cache sweep runs bounded configurations the
   paper's figures 8-18 never use, so it is produced only on demand
   (the [cache] subcommand / bench harness). *)
let cache_sweep (sweeps : Runner.cache_data list) =
  let columns =
    match sweeps with
    | [] -> []
    | s :: _ ->
        let fracs =
          List.sort_uniq compare
            (List.map (fun p -> p.Runner.frac) s.Runner.points)
        in
        List.map (fun f -> Printf.sprintf "%g" f) fracs
  in
  let table =
    Table.make
      ~title:
        "Cache-size sweep: cycles relative to an unbounded cache \
         (rows bench/policy, columns capacity as a fraction of the \
         translated footprint)"
      ~columns
  in
  List.fold_left
    (fun table (s : Runner.cache_data) ->
      let base = s.Runner.baseline.Engine.counters.Perf_model.cycles in
      let policies =
        List.sort_uniq compare
          (List.map (fun p -> p.Runner.policy) s.Runner.points)
      in
      List.fold_left
        (fun table policy ->
          let row =
            List.filter_map
              (fun (p : Runner.cache_point) ->
                if p.Runner.policy <> policy then None
                else if base > 0.0 then
                  Some
                    (Some
                       (p.Runner.bounded.Engine.counters.Perf_model.cycles
                      /. base))
                else Some None)
              s.Runner.points
          in
          Table.add_row table
            (Printf.sprintf "%s/%s"
               s.Runner.cache_bench.Tpdbt_workloads.Spec.name
               (Tpdbt_dbt.Code_cache.policy_name policy))
            row)
        table policies)
    table sweeps

(* Parallel-scaling table: one row per job count, seconds + speedup
   against the first (sequential) measurement.  Feeds the
   BENCH_parallel.json artifact and `bench --par-bench`. *)
let parallel_scaling measurements =
  let table =
    Table.make ~title:"Full-suite sweep scaling (wall seconds, speedup vs -j 1)"
      ~columns:[ "seconds"; "speedup" ]
  in
  let base =
    match measurements with (_, s) :: _ when s > 0.0 -> s | _ -> 0.0
  in
  List.fold_left
    (fun table (jobs, seconds) ->
      let speedup =
        if seconds > 0.0 && base > 0.0 then Some (base /. seconds) else None
      in
      Table.add_row table
        (Printf.sprintf "-j %d" jobs)
        [ Some seconds; speedup ])
    table measurements

let all data =
  [
    ("fig8", fig8 data);
    ("fig9", fig9 data);
    ("fig10", fig10 data);
    ("fig11", fig11 data);
    ("fig12", fig12 data);
    ("fig13", fig13 data);
    ("fig14", fig14 data);
    ("fig15", fig15 data);
    ("fig16", fig16 data);
    ("fig17", fig17 data);
    ("fig18", fig18 data);
  ]
