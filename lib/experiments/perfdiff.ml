module Json = Tpdbt_telemetry.Json

type direction = Higher_better | Lower_better
type verdict = Regression | Improvement | Within

(* The perf metrics each BENCH_perf.json row carries, with the sign
   convention the verdict uses.  [guest_ips] is throughput; the other
   two are costs. *)
let metrics =
  [
    ("guest_ips", Higher_better);
    ("alloc_per_instr", Lower_better);
    ("cycles", Lower_better);
  ]

type delta = {
  bench : string;
  metric : string;
  older : float;
  newer : float;
  change : float;  (** fractional: [(newer - older) /. older] *)
  verdict : verdict;
}

type report = {
  tolerance : float;
  deltas : delta list;
  missing : string list;  (** benches in the old file only *)
  added : string list;  (** benches in the new file only *)
  host_note : string option;
      (** set when the two files carry different host metadata *)
}

let judge ~tolerance direction ~older ~newer =
  let change =
    if Float.abs older > 1e-12 then (newer -. older) /. older
    else if Float.abs newer > 1e-12 then 1.0
    else 0.0
  in
  let verdict =
    if Float.abs change <= tolerance then Within
    else
      match direction with
      | Higher_better -> if change < 0.0 then Regression else Improvement
      | Lower_better -> if change > 0.0 then Regression else Improvement
  in
  (change, verdict)

(* ---- reading BENCH_perf.json ------------------------------------------ *)

let ( let* ) = Result.bind

let field name row =
  match Option.bind (Json.member name row) Json.as_number with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bench row lacks numeric %S" name)

let bench_rows doc =
  match Option.bind (Json.member "benches" doc) Json.as_list with
  | None -> Error "no \"benches\" array"
  | Some rows ->
      let rec walk acc = function
        | [] -> Ok (List.rev acc)
        | row :: tl -> (
            match Option.bind (Json.member "name" row) Json.as_string with
            | None -> Error "bench row lacks string \"name\""
            | Some name ->
                let rec vals acc = function
                  | [] -> Ok (List.rev acc)
                  | (m, _) :: tl ->
                      let* v = field m row in
                      vals ((m, v) :: acc) tl
                in
                let* vs = vals [] metrics in
                walk ((name, vs) :: acc) tl)
      in
      walk [] rows

(* The host stanza is load-bearing: alloc-words/instr is portable but
   guest_ips is not, so a BENCH file that does not say what machine it
   came from cannot be judged.  Missing or non-object [host] is a
   validation error (CLI exit 2), not a silent "hosts match". *)
let host_string doc =
  match Json.member "host" doc with
  | Some (Json.Obj members) ->
      Ok
        (String.concat ";"
           (List.filter_map
              (fun (k, v) ->
                match v with
                | Json.Num n -> Some (Printf.sprintf "%s=%.17g" k n)
                | Json.Str s -> Some (Printf.sprintf "%s=%s" k s)
                | Json.Bool b -> Some (Printf.sprintf "%s=%b" k b)
                | _ -> None)
              members))
  | Some _ -> Error "\"host\" is not an object"
  | None -> Error "no \"host\" object"

let select_metrics only =
  match only with
  | None -> Ok metrics
  | Some m -> (
      match List.assoc_opt m metrics with
      | Some dir -> Ok [ (m, dir) ]
      | None ->
          Error
            (Printf.sprintf "unknown metric %S (tracked: %s)" m
               (String.concat ", " (List.map fst metrics))))

let of_docs ?only ~tolerance old_doc new_doc =
  let* judged = select_metrics only in
  let* oh = Result.map_error (fun e -> "old file: " ^ e) (host_string old_doc) in
  let* nh = Result.map_error (fun e -> "new file: " ^ e) (host_string new_doc) in
  let* old_rows = bench_rows old_doc in
  let* new_rows = bench_rows new_doc in
  let deltas =
    List.concat_map
      (fun (bench, old_vs) ->
        match List.assoc_opt bench new_rows with
        | None -> []
        | Some new_vs ->
            List.map
              (fun (metric, direction) ->
                let older = List.assoc metric old_vs in
                let newer = List.assoc metric new_vs in
                let change, verdict = judge ~tolerance direction ~older ~newer in
                { bench; metric; older; newer; change; verdict })
              judged)
      old_rows
  in
  let missing =
    List.filter_map
      (fun (b, _) -> if List.mem_assoc b new_rows then None else Some b)
      old_rows
  in
  let added =
    List.filter_map
      (fun (b, _) -> if List.mem_assoc b old_rows then None else Some b)
      new_rows
  in
  let host_note =
    if oh <> nh then
      Some (Printf.sprintf "hosts differ: old [%s] vs new [%s]" oh nh)
    else None
  in
  Ok { tolerance; deltas; missing; added; host_note }

let of_strings ?only ~tolerance old_s new_s =
  let* old_doc =
    Result.map_error (fun e -> "old file: " ^ e) (Json.parse old_s)
  in
  let* new_doc =
    Result.map_error (fun e -> "new file: " ^ e) (Json.parse new_s)
  in
  of_docs ?only ~tolerance old_doc new_doc

let regressions r =
  List.filter (fun d -> d.verdict = Regression) r.deltas

let verdict_name = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Within -> "ok"

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "perfdiff (tolerance %.1f%%):\n" (100.0 *. r.tolerance));
  Buffer.add_string buf
    "  bench        metric            old           new       change  verdict\n";
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %-15s %12.4g  %12.4g  %+9.2f%%  %s\n" d.bench
           d.metric d.older d.newer (100.0 *. d.change) (verdict_name d.verdict)))
    r.deltas;
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "  %-12s missing from new file\n" b))
    r.missing;
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "  %-12s new bench (no baseline)\n" b))
    r.added;
  (match r.host_note with
  | Some note -> Buffer.add_string buf ("  note: " ^ note ^ "\n")
  | None -> ());
  let n = List.length (regressions r) in
  Buffer.add_string buf
    (if n = 0 then "  no regressions\n"
     else Printf.sprintf "  %d regression(s)\n" n);
  Buffer.contents buf
