(** Resumable sweeps: one checkpoint file per benchmark, holding either
    its finished results or its mid-run suspended state.

    A {e finished} checkpoint stores only the {e raw} engine results
    (snapshots via {!Tpdbt_profiles.Profile_io}, counters with the
    cycles float in lossless [%h] form, steps, outputs, region stats);
    every derived comparison is recomputed on load through
    {!Runner.assemble}, which is pure — so a sweep resumed from
    checkpoints produces output byte-identical to an uninterrupted one.

    A {e suspended} checkpoint (format v4) additionally exists mid-run:
    the completed stages plus the in-flight engine's serialized image
    ({!Tpdbt_dbt.Exec_snapshot}).  A benchmark's file monotonically
    progresses suspended -> ... -> suspended -> finished in the same
    slot, so a sweep killed at {e any} guest instruction resumes from
    its last snapshot — and, by the engine's capture/restore guarantee,
    still produces byte-identical final results.

    The store is crash-consistent (since v3): files carry a CRC32 and
    byte length over the payload, are written to a temp file, fsynced
    and atomically renamed into place — a sweep killed (or a machine
    losing power) mid-write never publishes a partial checkpoint.  On
    load, damage is {e classified}: a truncated, bit-flipped,
    trailing-garbage or empty file is {!Corrupt}, an older format is
    {!Stale_version}, and either way resume re-runs exactly the
    damaged entries instead of trusting them — so the repaired sweep
    is byte-identical to one that never lost the file. *)

type stored =
  | Finished of Runner.data  (** a completed benchmark's results *)
  | Suspended of Runner.partial  (** mid-run state, resumable *)

type classified =
  | Valid of stored  (** header, CRC, length and payload all check out *)
  | Missing  (** no checkpoint file *)
  | Stale_version of string
      (** an earlier format's magic line — sound when written, but not
          readable by this version; re-run *)
  | Corrupt of string
      (** damaged (truncated, bit-flipped, trailing garbage, empty,
          wrong benchmark, different threshold list, damaged embedded
          engine snapshot, …); the string says how *)

val path : dir:string -> Tpdbt_workloads.Spec.t -> string
(** [<dir>/<bench-name>.ckpt]. *)

val save : dir:string -> Runner.data -> unit
(** Write the benchmark's finished checkpoint crash-consistently (temp
    file, fsync, atomic rename, then fsync of [dir] so the rename
    itself survives a power cut), creating [dir] if needed.
    @raise Sys_error on I/O failure. *)

val save_suspended : dir:string -> Runner.partial -> unit
(** Write mid-run state into the benchmark's slot, with the same
    crash-consistency; a later {!save} overwrites it with the finished
    result.
    @raise Sys_error on I/O failure. *)

val classify :
  ?thresholds:(string * int) list ->
  dir:string ->
  Tpdbt_workloads.Spec.t ->
  classified
(** Inspect the benchmark's checkpoint without committing to a
    boolean: callers that only care whether to re-run use {!load};
    the supervisor uses the classification to count and report
    corruption. *)

val load :
  ?thresholds:(string * int) list ->
  dir:string ->
  Tpdbt_workloads.Spec.t ->
  Runner.data option
(** The {e finished} result — [None] if the file is absent, malformed,
    suspended, for another benchmark, or recorded under a different
    threshold list (default {!Tpdbt_workloads.Suite.thresholds}). *)

val load_suspended :
  ?thresholds:(string * int) list ->
  dir:string ->
  Tpdbt_workloads.Spec.t ->
  Runner.partial option
(** The {e suspended} mid-run state, under the same validation. *)

val hooks :
  ?thresholds:(string * int) list ->
  ?on_bad:(Tpdbt_workloads.Spec.t -> string -> unit) ->
  dir:string ->
  unit ->
  (Runner.data -> unit) * (Tpdbt_workloads.Spec.t -> Runner.data option)
(** [(save, load)] closures for {!Runner.run_many}'s [?save]/[?load].
    [on_bad spec reason] fires when a checkpoint exists but is
    {!Corrupt} or {!Stale_version} (never for {!Missing} or a healthy
    {!Suspended} entry) — the hook behind [checkpoint.corrupt]
    telemetry. *)

val run_many :
  ?thresholds:(string * int) list ->
  ?max_steps:int ->
  ?deadline:int ->
  ?snapshot_every:int ->
  ?suspend_on_deadline:bool ->
  ?resume_suspended:bool ->
  ?on_snapshot_saved:(string -> unit) ->
  ?progress:(string -> Runner.status -> unit) ->
  dir:string ->
  Tpdbt_workloads.Spec.t list ->
  Runner.sweep
(** {!Runner.run_many} with checkpointing wired in: completed
    benchmarks are saved to [dir] and already-checkpointed ones are
    restored instead of re-run.  [snapshot_every]/[suspend_on_deadline]
    arm mid-run snapshots, each saved into the benchmark's slot (then
    reported to [on_snapshot_saved] with the benchmark name);
    [resume_suspended] (default [true]) continues suspended entries
    from their snapshot instead of restarting them. *)

val run_many_par :
  ?thresholds:(string * int) list ->
  ?max_steps:int ->
  ?deadline:int ->
  ?snapshot_every:int ->
  ?suspend_on_deadline:bool ->
  ?resume_suspended:bool ->
  ?on_snapshot_saved:(string -> unit) ->
  ?jobs:int ->
  ?progress:(string -> Runner.status -> unit) ->
  ?sink:Tpdbt_telemetry.Sink.t ->
  ?metrics:Tpdbt_telemetry.Metrics.t ->
  ?report:(Tpdbt_parallel.Pool.stats -> unit) ->
  dir:string ->
  Tpdbt_workloads.Spec.t list ->
  Runner.sweep
(** {!Runner.run_many_par} with the same checkpoint hooks.  Finished
    results are saved on the calling (collector) domain as they
    arrive, and the resume scan runs before any worker spawns —
    checkpoint files are byte-identical to a sequential run's at every
    job count.  Mid-run snapshots are the one exception: each is saved
    by the worker driving that benchmark, which is that file's only
    writer until the task completes, so the single-writer-per-file
    invariant still holds. *)

val run_many_supervised :
  ?thresholds:(string * int) list ->
  ?max_steps:int ->
  ?deadline:int ->
  ?snapshot_every:int ->
  ?suspend_on_deadline:bool ->
  ?resume_suspended:bool ->
  ?on_snapshot_saved:(string -> unit) ->
  ?jobs:int ->
  ?policy:Tpdbt_parallel.Supervisor.policy ->
  ?progress:(string -> Runner.status -> unit) ->
  ?sink:Tpdbt_telemetry.Sink.t ->
  ?metrics:Tpdbt_telemetry.Metrics.t ->
  ?report:(Tpdbt_parallel.Supervisor.stats -> unit) ->
  ?run_task:
    (task:int ->
    attempt:int ->
    Tpdbt_workloads.Spec.t ->
    (Runner.data, Tpdbt_dbt.Error.t) result) ->
  dir:string ->
  Tpdbt_workloads.Spec.t list ->
  Runner.sweep * Runner.supervision
(** {!Runner.run_many_supervised} with the crash-consistent checkpoint
    hooks.  Damaged checkpoints found during the resume scan are
    re-run, returned in [supervision.corrupt] (scan order), emitted as
    [checkpoint.corrupt] telemetry events, and counted in the
    [checkpoint.corrupt] metric.  Suspended entries resume from their
    mid-run snapshot (at every attempt — a retry of a task whose
    earlier attempt crashed after a snapshot continues rather than
    restarts).  Together with the supervisor this closes the loop: a
    sweep survives task failures, worker crashes, a kill at an
    arbitrary guest instruction {e and} a corrupted checkpoint store,
    and still produces results byte-identical to an undisturbed run
    for every non-poisoned benchmark. *)

val data_to_string : Runner.data -> string
val partial_to_string : Runner.partial -> string

val data_of_string :
  ?thresholds:(string * int) list ->
  Tpdbt_workloads.Spec.t ->
  string ->
  classified
(** The serialisation itself, for tests.  [data_of_string] needs the
    spec because checkpoints reference the benchmark by name rather
    than re-encoding the descriptor.  It never returns {!Missing} (the
    text exists; an empty string is {!Corrupt}); [thresholds], when
    given, must match the recorded list exactly. *)
