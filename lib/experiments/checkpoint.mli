(** Resumable sweeps: one checkpoint file per completed benchmark.

    A checkpoint stores only the {e raw} engine results (snapshots via
    {!Tpdbt_profiles.Profile_io}, counters with the cycles float in
    lossless [%h] form, steps, outputs, region stats); every derived
    comparison is recomputed on load through {!Runner.assemble}, which
    is pure — so a sweep resumed from checkpoints produces output
    byte-identical to an uninterrupted one.

    Files are written atomically (temp file + rename): a sweep killed
    mid-write never leaves a truncated checkpoint, and a corrupt or
    stale file (wrong benchmark, different threshold list, malformed
    content) is treated as absent — the benchmark simply re-runs. *)

val path : dir:string -> Tpdbt_workloads.Spec.t -> string
(** [<dir>/<bench-name>.ckpt]. *)

val save : dir:string -> Runner.data -> unit
(** Write the benchmark's checkpoint atomically, creating [dir] if
    needed.
    @raise Sys_error on I/O failure. *)

val load :
  ?thresholds:(string * int) list ->
  dir:string ->
  Tpdbt_workloads.Spec.t ->
  Runner.data option
(** [None] if the file is absent, malformed, for another benchmark, or
    recorded under a different threshold list (default
    {!Tpdbt_workloads.Suite.thresholds}). *)

val hooks :
  ?thresholds:(string * int) list ->
  dir:string ->
  unit ->
  (Runner.data -> unit) * (Tpdbt_workloads.Spec.t -> Runner.data option)
(** [(save, load)] closures for {!Runner.run_many}'s [?save]/[?load]. *)

val run_many :
  ?thresholds:(string * int) list ->
  ?progress:(string -> Runner.status -> unit) ->
  dir:string ->
  Tpdbt_workloads.Spec.t list ->
  Runner.sweep
(** {!Runner.run_many} with checkpointing wired in: completed
    benchmarks are saved to [dir] and already-checkpointed ones are
    restored instead of re-run. *)

val run_many_par :
  ?thresholds:(string * int) list ->
  ?jobs:int ->
  ?progress:(string -> Runner.status -> unit) ->
  ?sink:Tpdbt_telemetry.Sink.t ->
  ?metrics:Tpdbt_telemetry.Metrics.t ->
  ?report:(Tpdbt_parallel.Pool.stats -> unit) ->
  dir:string ->
  Tpdbt_workloads.Spec.t list ->
  Runner.sweep
(** {!Runner.run_many_par} with the same checkpoint hooks.  All file
    I/O stays on the calling (collector) domain: the resume scan runs
    before any worker spawns, and each completed benchmark is saved
    atomically as its result arrives — so checkpoint files are
    byte-identical to a sequential run's at every job count, and a
    sweep killed mid-parallel-flight resumes exactly like a
    sequential one. *)

val data_to_string : Runner.data -> string
val data_of_string : Tpdbt_workloads.Spec.t -> string -> Runner.data option
(** The serialisation itself, for tests.  [data_of_string] needs the
    spec because checkpoints reference the benchmark by name rather
    than re-encoding the descriptor. *)
