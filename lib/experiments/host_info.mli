(** Host metadata stamped into benchmark result files.

    Perf numbers are meaningless without the machine that produced
    them: every [BENCH_*.json] carries this record so that [tpdbt
    perfdiff] can warn when two files being compared came from
    different hosts or toolchains. *)

type t = {
  cores : int;  (** [Domain.recommended_domain_count ()] *)
  ocaml_version : string;
  word_size : int;  (** bits per [int] word carrier: 32 or 64 *)
  os_type : string;  (** ["Unix"], ["Win32"] or ["Cygwin"] *)
  flambda : bool;  (** whether the compiler was built with flambda *)
}

val capture : unit -> t

val to_json : t -> string
(** One JSON object, keys in declaration order. *)

val render : t -> string
(** One human-readable line. *)
