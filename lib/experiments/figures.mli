(** One table generator per figure of the paper's evaluation (§4).

    Every function takes the sweep results of {!Runner.run_many} over
    the full suite (subsets work too: averages are over the benchmarks
    present) and returns the table whose rows/series correspond to the
    figure. *)

val fig8 : Runner.data list -> Table.t
(** Average Sd.BP(T) for INT and FP, with Sd.BP(train) reference. *)

val fig9 : Runner.data list -> Table.t
(** Sd.BP(T) per INT benchmark. *)

val fig10 : Runner.data list -> Table.t
(** Average branch-probability mismatch rates (ranges [0,.3) [.3,.7]
    (.7,1]) for INT and FP, with the train reference. *)

val fig11 : Runner.data list -> Table.t
(** BP mismatch per INT benchmark. *)

val fig12 : Runner.data list -> Table.t
(** BP mismatch per FP benchmark. *)

val fig13 : Runner.data list -> Table.t
(** Average Sd.CP(T) for INT and FP. *)

val fig14 : Runner.data list -> Table.t
(** Average Sd.LP(T) for INT and FP. *)

val fig15 : Runner.data list -> Table.t
(** Average loop trip-count-range mismatch for INT and FP. *)

val fig16 : Runner.data list -> Table.t
(** LP mismatch per INT benchmark. *)

val fig17 : Runner.data list -> Table.t
(** Relative performance vs threshold (int, int-no-perl, fp); base is
    the smallest threshold run (paper: threshold 1). *)

val fig18 : Runner.data list -> Table.t
(** Profiling operations normalised to the training run. *)

val cache_sweep : Runner.cache_data list -> Table.t
(** Cycles relative to the unbounded-cache baseline, one row per
    (benchmark, eviction policy), one column per capacity fraction —
    the Fig-17-style bounded-cache companion.  Not included in {!all}:
    it runs configurations the paper's figures never use. *)

val parallel_scaling : (int * float) list -> Table.t
(** [(jobs, wall seconds)] measurements, in increasing job order with
    the sequential run first, rendered as one row per job count with a
    speedup column relative to the first measurement.  Powers the
    [BENCH_parallel.json] artifact and [bench --par-bench]; not part of
    {!all} (it measures the harness, not the paper). *)

val all : Runner.data list -> (string * Table.t) list
(** [(figure id, table)] for figures 8–18 in order. *)
