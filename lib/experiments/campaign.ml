module Engine = Tpdbt_dbt.Engine
module Error = Tpdbt_dbt.Error
module Perf_model = Tpdbt_dbt.Perf_model
module Spec = Tpdbt_workloads.Spec
module Fault = Tpdbt_faults.Fault
module Plan = Tpdbt_faults.Plan
module Prng = Tpdbt_vm.Prng

type outcome =
  | Recovered
  | Degraded
  | Failed of Error.t
  | Uncaught of string

type trial = {
  index : int;
  plan : Plan.t;
  outcome : outcome;
  report : Fault.report option;
  counters : Perf_model.counters option;
}

type t = {
  bench : Spec.t;
  threshold : int;
  seed : int64;
  clean : Engine.result;
  trials : trial list;
}

let outcome_name = function
  | Recovered -> "recovered"
  | Degraded -> "degraded"
  | Failed _ -> "failed"
  | Uncaught _ -> "uncaught"

let classify (clean : Engine.result) (r : Engine.result) =
  let c = r.Engine.counters in
  match r.Engine.error with
  | Some e when Error.fatal e -> Failed e
  | _ ->
      if
        c.Perf_model.corrupted_entries > 0
        && c.Perf_model.shadow_divergences = 0
      then
        (* Silently corrupted translated code executed and the shadow
           oracle never flagged it: wrong results may have been produced
           with no signal at all.  As bad as an escaped exception. *)
        Uncaught "silent corruption executed undetected"
      else if
        r.Engine.outputs = clean.Engine.outputs
        && r.Engine.steps = clean.Engine.steps
      then Recovered
      else Degraded

let run ?(jobs = 1) ?(threshold = 20) ?(trials = 8) ?(arms = 4)
    ?(kinds = Fault.all_kinds) ?(shadow_sample = 0) ~seed bench =
  let config = Engine.config ~threshold ~shadow_sample () in
  let clean = Runner.run_ref bench ~config in
  (match clean.Engine.error with
  | Some e when Error.fatal e -> raise (Error.Error e)
  | _ -> ());
  let prng = Prng.create ~seed in
  (* Every plan is built up front on the calling domain, drawing seeds
     in trial order — the campaign stays a pure function of its inputs
     at every job count, and workers only ever run engines. *)
  let plan_seeds =
    let rec draw n acc =
      if n = 0 then List.rev acc
      else draw (n - 1) (Prng.next_int64 prng :: acc)
    in
    draw trials []
  in
  let tasks =
    List.mapi
      (fun index plan_seed ->
        ( index,
          Plan.make ~kinds ~count:arms
            ~horizon:(max 1 clean.Engine.steps)
            ~seed:plan_seed () ))
      plan_seeds
  in
  let run_trial (index, plan) =
    let config = Engine.config ~threshold ~shadow_sample ~faults:plan () in
    match Runner.run_ref bench ~config with
    | result ->
        {
          index;
          plan;
          outcome = classify clean result;
          report = result.Engine.faults;
          counters = Some result.Engine.counters;
        }
    | exception e ->
        {
          index;
          plan;
          outcome = Uncaught (Printexc.to_string e);
          report = None;
          counters = None;
        }
  in
  let trials =
    if jobs <= 1 then List.map run_trial tasks
    else
      let results, _ =
        Tpdbt_parallel.Pool.map ~jobs run_trial (Array.of_list tasks)
      in
      Array.to_list results
  in
  { bench; threshold; seed; clean; trials }

type tally = { recovered : int; degraded : int; failed : int; uncaught : int }

let tally t =
  List.fold_left
    (fun acc tr ->
      match tr.outcome with
      | Recovered -> { acc with recovered = acc.recovered + 1 }
      | Degraded -> { acc with degraded = acc.degraded + 1 }
      | Failed _ -> { acc with failed = acc.failed + 1 }
      | Uncaught _ -> { acc with uncaught = acc.uncaught + 1 })
    { recovered = 0; degraded = 0; failed = 0; uncaught = 0 }
    t.trials

let ok t = (tally t).uncaught = 0

let render ppf t =
  let n = List.length t.trials in
  Format.fprintf ppf
    "@[<v>fault campaign: %s (threshold %d, seed 0x%Lx, %d trials)@,\
     clean run: %d steps, %d outputs@,"
    t.bench.Spec.name t.threshold t.seed n t.clean.Engine.steps
    (List.length t.clean.Engine.outputs);
  List.iter
    (fun tr ->
      let injected, armed =
        match tr.report with
        | Some r -> (Fault.injected r, Plan.count tr.plan)
        | None -> (0, Plan.count tr.plan)
      in
      Format.fprintf ppf "  trial %d: %-9s injected %d/%d" tr.index
        (outcome_name tr.outcome) injected armed;
      (match tr.counters with
      | Some c ->
          Format.fprintf ppf "  retries %d dissolves %d retranslated %d"
            c.Perf_model.retrans_retries c.Perf_model.fault_dissolves
            c.Perf_model.blocks_retranslated;
          if c.Perf_model.corrupted_entries > 0 then
            Format.fprintf ppf " corrupted %d divergences %d quarantined %d"
              c.Perf_model.corrupted_entries c.Perf_model.shadow_divergences
              c.Perf_model.regions_quarantined
      | None -> ());
      (match tr.outcome with
      | Failed e -> Format.fprintf ppf "  [%s]" (Error.to_string e)
      | Uncaught msg -> Format.fprintf ppf "  [uncaught: %s]" msg
      | Recovered | Degraded -> ());
      Format.fprintf ppf "@,")
    t.trials;
  let { recovered; degraded; failed; uncaught } = tally t in
  let injected_total =
    List.fold_left
      (fun acc tr ->
        match tr.report with Some r -> acc + Fault.injected r | None -> acc)
      0 t.trials
  in
  let armed_total =
    List.fold_left (fun acc tr -> acc + Plan.count tr.plan) 0 t.trials
  in
  Format.fprintf ppf
    "outcomes: %d recovered, %d degraded, %d failed, %d uncaught (%d shots \
     landed / %d arms)@]"
    recovered degraded failed uncaught injected_total armed_total
