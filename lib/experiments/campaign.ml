module Engine = Tpdbt_dbt.Engine
module Error = Tpdbt_dbt.Error
module Perf_model = Tpdbt_dbt.Perf_model
module Spec = Tpdbt_workloads.Spec
module Fault = Tpdbt_faults.Fault
module Plan = Tpdbt_faults.Plan
module Prng = Tpdbt_vm.Prng

type outcome =
  | Recovered
  | Degraded
  | Failed of Error.t
  | Uncaught of string

type trial = {
  index : int;
  plan : Plan.t;
  outcome : outcome;
  report : Fault.report option;
  counters : Perf_model.counters option;
}

type t = {
  bench : Spec.t;
  threshold : int;
  seed : int64;
  clean : Engine.result;
  trials : trial list;
}

let outcome_name = function
  | Recovered -> "recovered"
  | Degraded -> "degraded"
  | Failed _ -> "failed"
  | Uncaught _ -> "uncaught"

let classify (clean : Engine.result) (r : Engine.result) =
  let c = r.Engine.counters in
  match r.Engine.error with
  | Some e when Error.fatal e -> Failed e
  | _ ->
      if
        c.Perf_model.corrupted_entries > 0
        && c.Perf_model.shadow_divergences = 0
      then
        (* Silently corrupted translated code executed and the shadow
           oracle never flagged it: wrong results may have been produced
           with no signal at all.  As bad as an escaped exception. *)
        Uncaught "silent corruption executed undetected"
      else if
        r.Engine.outputs = clean.Engine.outputs
        && r.Engine.steps = clean.Engine.steps
      then Recovered
      else Degraded

let run ?(jobs = 1) ?(threshold = 20) ?(trials = 8) ?(arms = 4)
    ?(kinds = Fault.all_kinds) ?(shadow_sample = 0) ~seed bench =
  let config = Engine.config ~threshold ~shadow_sample () in
  let clean = Runner.run_ref bench ~config in
  (match clean.Engine.error with
  | Some e when Error.fatal e -> raise (Error.Error e)
  | _ -> ());
  let prng = Prng.create ~seed in
  (* Every plan is built up front on the calling domain, drawing seeds
     in trial order — the campaign stays a pure function of its inputs
     at every job count, and workers only ever run engines. *)
  let plan_seeds =
    let rec draw n acc =
      if n = 0 then List.rev acc
      else draw (n - 1) (Prng.next_int64 prng :: acc)
    in
    draw trials []
  in
  let tasks =
    List.mapi
      (fun index plan_seed ->
        ( index,
          Plan.make ~kinds ~count:arms
            ~horizon:(max 1 clean.Engine.steps)
            ~seed:plan_seed () ))
      plan_seeds
  in
  let run_trial (index, plan) =
    let config = Engine.config ~threshold ~shadow_sample ~faults:plan () in
    match Runner.run_ref bench ~config with
    | result ->
        {
          index;
          plan;
          outcome = classify clean result;
          report = result.Engine.faults;
          counters = Some result.Engine.counters;
        }
    | exception e ->
        {
          index;
          plan;
          outcome = Uncaught (Printexc.to_string e);
          report = None;
          counters = None;
        }
  in
  let trials =
    if jobs <= 1 then List.map run_trial tasks
    else
      let results, _ =
        Tpdbt_parallel.Pool.map ~jobs run_trial (Array.of_list tasks)
      in
      Array.to_list results
  in
  { bench; threshold; seed; clean; trials }

type tally = { recovered : int; degraded : int; failed : int; uncaught : int }

let tally t =
  List.fold_left
    (fun acc tr ->
      match tr.outcome with
      | Recovered -> { acc with recovered = acc.recovered + 1 }
      | Degraded -> { acc with degraded = acc.degraded + 1 }
      | Failed _ -> { acc with failed = acc.failed + 1 }
      | Uncaught _ -> { acc with uncaught = acc.uncaught + 1 })
    { recovered = 0; degraded = 0; failed = 0; uncaught = 0 }
    t.trials

let ok t = (tally t).uncaught = 0

(* ---- chaos harness ----------------------------------------------------- *)

module Sup = Tpdbt_parallel.Supervisor
module Suite = Tpdbt_workloads.Suite
module Json = Tpdbt_telemetry.Json

type chaos_fault = Stall | Crash | Bitflip | Panic | Kill | Truncate

let chaos_fault_name = function
  | Stall -> "stall"
  | Crash -> "crash"
  | Bitflip -> "bitflip"
  | Panic -> "panic"
  | Kill -> "kill"
  | Truncate -> "truncate"

type chaos = {
  chaos_seed : int64;
  chaos_benches : string list;
  injected_faults : (string * chaos_fault) list;
  poisoned_benches : string list;
  retried : int;
  worker_crashes : int;
  corrupt_checkpoints : string list;
  resumed_from_snapshot : string list;
  survivors : string list;
  mismatched : string list;
}

let victims_of fault c =
  List.filter_map
    (fun (n, f) -> if f = fault then Some n else None)
    c.injected_faults

let chaos_ok c =
  let sort = List.sort String.compare in
  c.mismatched = []
  && sort c.poisoned_benches = sort (victims_of Stall c)
  && sort c.corrupt_checkpoints
     = sort (victims_of Bitflip c @ victims_of Truncate c)
  && sort c.resumed_from_snapshot = sort (victims_of Kill c)
  && c.worker_crashes >= List.length (victims_of Crash c)
  && c.retried >= List.length (victims_of Panic c)

(* Everything scheduling-dependent (degraded flag, busy/elapsed times,
   job count) is deliberately absent: the summary must be byte-identical
   across -j 1/2/4 and across repeated same-seed runs. *)
let chaos_to_json c =
  Json.obj
    [
      ("seed", Json.quote (Printf.sprintf "0x%Lx" c.chaos_seed));
      ("benches", Json.arr (List.map Json.quote c.chaos_benches));
      ( "faults",
        Json.obj
          (List.map
             (fun (n, f) -> (n, Json.quote (chaos_fault_name f)))
             c.injected_faults) );
      ("poisoned", Json.arr (List.map Json.quote c.poisoned_benches));
      ("retried", string_of_int c.retried);
      ("crashes", string_of_int c.worker_crashes);
      ("corrupt", Json.arr (List.map Json.quote c.corrupt_checkpoints));
      ( "resumed_from_snapshot",
        Json.arr (List.map Json.quote c.resumed_from_snapshot) );
      ("survivors", Json.arr (List.map Json.quote c.survivors));
      ("mismatched", Json.arr (List.map Json.quote c.mismatched));
      ("ok", if chaos_ok c then "true" else "false");
    ]

let render_chaos ppf c =
  Format.fprintf ppf "@[<v>chaos sweep: seed 0x%Lx, %d benchmarks@,"
    c.chaos_seed
    (List.length c.chaos_benches);
  List.iter
    (fun (n, f) ->
      Format.fprintf ppf "  fault: %s <- %s@," n (chaos_fault_name f))
    c.injected_faults;
  Format.fprintf ppf
    "  retried %d, worker crashes %d@,\
    \  poisoned: %s@,\
    \  corrupt checkpoints: %s@,\
    \  resumed from mid-run snapshot: %s@,\
    \  survivors byte-identical to fault-free run: %d/%d@,"
    c.retried c.worker_crashes
    (match c.poisoned_benches with
    | [] -> "none"
    | l -> String.concat ", " l)
    (match c.corrupt_checkpoints with
    | [] -> "none"
    | l -> String.concat ", " l)
    (match c.resumed_from_snapshot with
    | [] -> "none"
    | l -> String.concat ", " l)
    (List.length c.survivors)
    (List.length c.chaos_benches - List.length c.poisoned_benches);
  List.iter
    (fun n -> Format.fprintf ppf "  MISMATCH: %s@," n)
    c.mismatched;
  Format.fprintf ppf "verdict: %s@]"
    (if chaos_ok c then "survived" else "FAILED")

let chaos_read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let chaos_write_file file s =
  let oc = open_out_bin file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* The stall victim's step budget: far below any suite benchmark's
   instruction count, so its runs deterministically die with
   [Deadline_exceeded] on every attempt until the breaker opens. *)
let stall_deadline = 1_000

let chaos ?(jobs = 1) ?benches ?thresholds ?max_steps ?progress ~dir ~seed ()
    =
  let benches =
    match benches with
    | Some l -> l
    | None ->
        List.filter_map Suite.find [ "gzip"; "swim"; "mgrid"; "art"; "mcf" ]
  in
  let names = List.map (fun (b : Spec.t) -> b.Spec.name) benches in
  let n = List.length benches in
  (* Seeded fault plan: shuffle the benchmarks, then deal the fault
     kinds in a fixed order to the first few victims.  Pure function of
     [(benches, seed)]. *)
  let prng = Prng.create ~seed in
  let order = Array.of_list names in
  for i = n - 1 downto 1 do
    let j = Prng.below prng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  (* One extra draw after the shuffle seeds the kill point's jitter;
     taken unconditionally so the shuffle itself is unchanged whether
     or not a kill victim gets dealt. *)
  let kill_jitter = Prng.below prng 1_000_000 in
  let injected_faults =
    List.filteri
      (fun k _ -> k < n)
      [ Stall; Crash; Bitflip; Panic; Kill; Truncate ]
    |> List.mapi (fun k f -> (order.(k), f))
  in
  let fault_of name =
    List.find_map
      (fun (v, f) -> if String.equal v name then Some f else None)
      injected_faults
  in
  (* Reference: the fault-free sequential sweep the survivors must
     match byte for byte. *)
  let reference = Runner.run_many ?thresholds ?max_steps benches in
  if reference.Runner.failures <> [] then
    invalid_arg "Campaign.chaos: a benchmark fails even without faults";
  let reference_text =
    List.map
      (fun (d : Runner.data) ->
        (d.Runner.bench.Spec.name, Checkpoint.data_to_string d))
      reference.Runner.data
  in
  (* The harness owns [dir]: stale checkpoints would make the resume
     scan depend on previous runs. *)
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".ckpt" then
          Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  let stall_run bench =
    Runner.run_benchmark_result ?thresholds ?max_steps
      ~deadline:stall_deadline bench
  in
  (* The kill victim's suspension point: a seeded guest-instruction
     count strictly inside its first (avep) stage, so the run is
     interrupted at an arbitrary mid-run instruction — never at a
     stage boundary, never past the end. *)
  let kill_deadline name =
    match
      List.find_map
        (fun (d : Runner.data) ->
          if String.equal d.Runner.bench.Spec.name name then
            Some d.Runner.avep.Engine.steps
          else None)
        reference.Runner.data
    with
    | Some steps when steps >= 4 ->
        (steps / 4) + (kill_jitter mod max 1 (steps / 2))
    | Some _ | None -> 1
  in
  (* Pass 1: tasks panic and workers crash on their first attempt, the
     stall victim never fits its deadline, and the checkpoint victims'
     files are damaged right after they are written. *)
  let ckpt_save, ckpt_load = Checkpoint.hooks ?thresholds ~dir () in
  let save_and_damage (d : Runner.data) =
    ckpt_save d;
    let file = Checkpoint.path ~dir d.Runner.bench in
    let damage f =
      let text = chaos_read_file file in
      let len = String.length text in
      f text len
    in
    match fault_of d.Runner.bench.Spec.name with
    | Some Bitflip ->
        damage (fun text len ->
            let b = Bytes.of_string text in
            let i = len / 2 in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
            chaos_write_file file (Bytes.to_string b))
    | Some Truncate ->
        damage (fun text len ->
            chaos_write_file file (String.sub text 0 (len / 2)))
    | Some Stall | Some Crash | Some Panic | Some Kill | None -> ()
  in
  let run_task_pass1 ~task:_ ~attempt (bench : Spec.t) =
    match fault_of bench.Spec.name with
    | Some Panic when attempt = 1 -> failwith "chaos: injected task panic"
    | Some Crash when attempt = 1 -> raise Sup.Crash_worker
    | Some Stall -> stall_run bench
    | Some Kill ->
        (* Killed at a seeded guest instruction: the run suspends
           there, publishes its mid-run snapshot into the store (the
           worker is that file's only writer) and is parked — the
           supervisor neither retries nor poisons it. *)
        Runner.run_benchmark_result ?thresholds ?max_steps
          ~deadline:(kill_deadline bench.Spec.name) ~suspend_on_deadline:true
          ~on_snapshot:(fun p -> Checkpoint.save_suspended ~dir p)
          bench
    | _ -> Runner.run_benchmark_result ?thresholds ?max_steps bench
  in
  let _sweep1, sup1 =
    Runner.run_many_supervised ?thresholds ?max_steps ~jobs ?progress
      ~save:save_and_damage ~load:ckpt_load ~run_task:run_task_pass1 benches
  in
  (* Pass 2: resume from the (partly damaged) store.  Only the stall is
     a persistent fault; panicking and crashing tasks already recovered
     in pass 1 and resume from their checkpoints, the kill victim
     continues from its mid-run snapshot, and the damaged checkpoints
     are classified corrupt and re-run cleanly. *)
  let resumed_from_snapshot =
    List.filter_map
      (fun (b : Spec.t) ->
        if Option.is_some (Checkpoint.load_suspended ?thresholds ~dir b) then
          Some b.Spec.name
        else None)
      benches
  in
  let run_task_pass2 ~task:_ ~attempt:_ (bench : Spec.t) =
    match fault_of bench.Spec.name with
    | Some Stall -> stall_run bench
    | _ ->
        Runner.run_benchmark_result ?thresholds ?max_steps
          ?resume:(Checkpoint.load_suspended ?thresholds ~dir bench)
          bench
  in
  let sweep2, sup2 =
    Checkpoint.run_many_supervised ?thresholds ?max_steps ~jobs ?progress
      ~run_task:run_task_pass2 ~dir benches
  in
  let poisoned_benches =
    List.map
      (fun ((b : Spec.t), _reason) -> b.Spec.name)
      sup2.Runner.poisoned
  in
  let corrupt_checkpoints = List.map fst sup2.Runner.corrupt in
  let survivors, mismatched =
    List.fold_left
      (fun (ok, bad) name ->
        if List.mem name poisoned_benches then (ok, bad)
        else
          let got =
            List.find_map
              (fun (d : Runner.data) ->
                if String.equal d.Runner.bench.Spec.name name then
                  Some (Checkpoint.data_to_string d)
                else None)
              sweep2.Runner.data
          in
          match (got, List.assoc_opt name reference_text) with
          | Some g, Some r when String.equal g r -> (name :: ok, bad)
          | _ -> (ok, name :: bad))
      ([], []) names
  in
  {
    chaos_seed = seed;
    chaos_benches = names;
    injected_faults;
    poisoned_benches;
    retried = sup1.Runner.sup.Sup.retries + sup2.Runner.sup.Sup.retries;
    worker_crashes = sup1.Runner.sup.Sup.crashes + sup2.Runner.sup.Sup.crashes;
    corrupt_checkpoints;
    resumed_from_snapshot;
    survivors = List.rev survivors;
    mismatched = List.rev mismatched;
  }

let render ppf t =
  let n = List.length t.trials in
  Format.fprintf ppf
    "@[<v>fault campaign: %s (threshold %d, seed 0x%Lx, %d trials)@,\
     clean run: %d steps, %d outputs@,"
    t.bench.Spec.name t.threshold t.seed n t.clean.Engine.steps
    (List.length t.clean.Engine.outputs);
  List.iter
    (fun tr ->
      let injected, armed =
        match tr.report with
        | Some r -> (Fault.injected r, Plan.count tr.plan)
        | None -> (0, Plan.count tr.plan)
      in
      Format.fprintf ppf "  trial %d: %-9s injected %d/%d" tr.index
        (outcome_name tr.outcome) injected armed;
      (match tr.counters with
      | Some c ->
          Format.fprintf ppf "  retries %d dissolves %d retranslated %d"
            c.Perf_model.retrans_retries c.Perf_model.fault_dissolves
            c.Perf_model.blocks_retranslated;
          if c.Perf_model.corrupted_entries > 0 then
            Format.fprintf ppf " corrupted %d divergences %d quarantined %d"
              c.Perf_model.corrupted_entries c.Perf_model.shadow_divergences
              c.Perf_model.regions_quarantined
      | None -> ());
      (match tr.outcome with
      | Failed e -> Format.fprintf ppf "  [%s]" (Error.to_string e)
      | Uncaught msg -> Format.fprintf ppf "  [uncaught: %s]" msg
      | Recovered | Degraded -> ());
      Format.fprintf ppf "@,")
    t.trials;
  let { recovered; degraded; failed; uncaught } = tally t in
  let injected_total =
    List.fold_left
      (fun acc tr ->
        match tr.report with Some r -> acc + Fault.injected r | None -> acc)
      0 t.trials
  in
  let armed_total =
    List.fold_left (fun acc tr -> acc + Plan.count tr.plan) 0 t.trials
  in
  Format.fprintf ppf
    "outcomes: %d recovered, %d degraded, %d failed, %d uncaught (%d shots \
     landed / %d arms)@]"
    recovered degraded failed uncaught injected_total armed_total
