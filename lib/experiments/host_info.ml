module Json = Tpdbt_telemetry.Json

type t = {
  cores : int;
  ocaml_version : string;
  word_size : int;
  os_type : string;
  flambda : bool;
}

let capture () =
  {
    cores = Domain.recommended_domain_count ();
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
    os_type = Sys.os_type;
    flambda = Config.flambda;
  }

let to_json t =
  Json.obj
    [
      ("cores", string_of_int t.cores);
      ("ocaml_version", Json.quote t.ocaml_version);
      ("word_size", string_of_int t.word_size);
      ("os_type", Json.quote t.os_type);
      ("flambda", string_of_bool t.flambda);
    ]

let render t =
  Printf.sprintf "%d cores, OCaml %s (%d-bit, %s, flambda %s)" t.cores
    t.ocaml_version t.word_size t.os_type (if t.flambda then "on" else "off")
