(** Seeded fault campaigns: does the two-phase engine survive injected
    failures, and at what cost?

    A campaign first runs the benchmark clean (no faults) as the
    reference, then runs [trials] faulty runs, each under a
    {!Tpdbt_faults.Plan} whose seed is drawn from the campaign seed —
    the whole campaign is a pure function of
    [(bench, threshold, seed, trials, arms, kinds)].

    Outcomes are judged against the clean run: a {e recovered} trial
    finished with no fatal error and guest-identical behaviour (same outputs,
    same instruction count) despite the injected faults; {e degraded}
    finished but diverged; {e failed} ended with a typed
    {!Tpdbt_dbt.Error.t} (expected for [Guest_trap] arms and exhausted
    recovery budgets); {e uncaught} means either an exception escaped
    the engine, or silently corrupted translated code
    ([Silent_corruption]) executed without the shadow oracle ever
    flagging it — both are outcomes the robustness work forbids.  Run
    campaigns that include [Silent_corruption] arms with
    [~shadow_sample] set, or expect uncaught trials. *)

type outcome =
  | Recovered
  | Degraded
  | Failed of Tpdbt_dbt.Error.t
  | Uncaught of string

type trial = {
  index : int;
  plan : Tpdbt_faults.Plan.t;
  outcome : outcome;
  report : Tpdbt_faults.Fault.report option;
      (** which arms fired, and on what *)
  counters : Tpdbt_dbt.Perf_model.counters option;
      (** [None] only for [Uncaught] trials *)
}

type t = {
  bench : Tpdbt_workloads.Spec.t;
  threshold : int;
  seed : int64;
  clean : Tpdbt_dbt.Engine.result;
  trials : trial list;
}

val run :
  ?jobs:int ->
  ?threshold:int ->
  ?trials:int ->
  ?arms:int ->
  ?kinds:Tpdbt_faults.Fault.kind list ->
  ?shadow_sample:int ->
  seed:int64 ->
  Tpdbt_workloads.Spec.t ->
  t
(** Defaults: threshold 20 (the paper's 2k label, scaled), 8 trials of
    4 arms each, all fault kinds, shadow oracle off ([shadow_sample]
    is passed straight to {!Tpdbt_dbt.Engine.config}).  Plan horizons
    are the clean run's instruction count, so every arm lands inside
    the run.

    [jobs] > 1 runs the trials on a {!Tpdbt_parallel.Pool} of that
    many worker domains.  All plan seeds are drawn (in trial order, on
    the calling domain) before any trial runs, and each trial is an
    isolated engine run, so the campaign — trials list included — is
    identical at every job count.  Default 1 (sequential, no domain
    spawned).
    @raise Tpdbt_dbt.Error.Error if the {e clean} run fails fatally
    ({!Tpdbt_dbt.Error.fatal}) — the campaign needs a healthy
    baseline.  A budget-limited clean run is kept: its horizon and its
    partial outputs are the (deterministic) baseline. *)

type tally = { recovered : int; degraded : int; failed : int; uncaught : int }

val tally : t -> tally
val outcome_name : outcome -> string

val ok : t -> bool
(** No uncaught exceptions — the campaign's pass criterion. *)

val render : Format.formatter -> t -> unit
(** Survival / recovery summary: one line per trial plus totals. *)
