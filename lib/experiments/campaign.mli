(** Seeded fault campaigns: does the two-phase engine survive injected
    failures, and at what cost?

    A campaign first runs the benchmark clean (no faults) as the
    reference, then runs [trials] faulty runs, each under a
    {!Tpdbt_faults.Plan} whose seed is drawn from the campaign seed —
    the whole campaign is a pure function of
    [(bench, threshold, seed, trials, arms, kinds)].

    Outcomes are judged against the clean run: a {e recovered} trial
    finished with no fatal error and guest-identical behaviour (same outputs,
    same instruction count) despite the injected faults; {e degraded}
    finished but diverged; {e failed} ended with a typed
    {!Tpdbt_dbt.Error.t} (expected for [Guest_trap] arms and exhausted
    recovery budgets); {e uncaught} means either an exception escaped
    the engine, or silently corrupted translated code
    ([Silent_corruption]) executed without the shadow oracle ever
    flagging it — both are outcomes the robustness work forbids.  Run
    campaigns that include [Silent_corruption] arms with
    [~shadow_sample] set, or expect uncaught trials. *)

type outcome =
  | Recovered
  | Degraded
  | Failed of Tpdbt_dbt.Error.t
  | Uncaught of string

type trial = {
  index : int;
  plan : Tpdbt_faults.Plan.t;
  outcome : outcome;
  report : Tpdbt_faults.Fault.report option;
      (** which arms fired, and on what *)
  counters : Tpdbt_dbt.Perf_model.counters option;
      (** [None] only for [Uncaught] trials *)
}

type t = {
  bench : Tpdbt_workloads.Spec.t;
  threshold : int;
  seed : int64;
  clean : Tpdbt_dbt.Engine.result;
  trials : trial list;
}

val run :
  ?jobs:int ->
  ?threshold:int ->
  ?trials:int ->
  ?arms:int ->
  ?kinds:Tpdbt_faults.Fault.kind list ->
  ?shadow_sample:int ->
  seed:int64 ->
  Tpdbt_workloads.Spec.t ->
  t
(** Defaults: threshold 20 (the paper's 2k label, scaled), 8 trials of
    4 arms each, all fault kinds, shadow oracle off ([shadow_sample]
    is passed straight to {!Tpdbt_dbt.Engine.config}).  Plan horizons
    are the clean run's instruction count, so every arm lands inside
    the run.

    [jobs] > 1 runs the trials on a {!Tpdbt_parallel.Pool} of that
    many worker domains.  All plan seeds are drawn (in trial order, on
    the calling domain) before any trial runs, and each trial is an
    isolated engine run, so the campaign — trials list included — is
    identical at every job count.  Default 1 (sequential, no domain
    spawned).
    @raise Tpdbt_dbt.Error.Error if the {e clean} run fails fatally
    ({!Tpdbt_dbt.Error.fatal}) — the campaign needs a healthy
    baseline.  A budget-limited clean run is kept: its horizon and its
    partial outputs are the (deterministic) baseline. *)

type tally = { recovered : int; degraded : int; failed : int; uncaught : int }

val tally : t -> tally
val outcome_name : outcome -> string

val ok : t -> bool
(** No uncaught exceptions — the campaign's pass criterion. *)

val render : Format.formatter -> t -> unit
(** Survival / recovery summary: one line per trial plus totals. *)

(** {1 Chaos sweeps}

    Where {!run} injects faults {e inside} one engine, a chaos sweep
    attacks the sweep infrastructure itself — the supervisor, the
    worker pool and the checkpoint store — and checks that the sweep
    still converges to the fault-free answer. *)

type chaos_fault =
  | Stall  (** persistent: every attempt blows a tiny step deadline *)
  | Crash  (** the worker domain dies on the first attempt *)
  | Bitflip  (** one byte of the written checkpoint is flipped *)
  | Panic  (** the task raises on its first attempt *)
  | Kill
      (** the run is killed at a seeded guest instruction strictly
          inside its first engine stage; it suspends there, leaving a
          mid-run snapshot in the store, and the resume pass must
          continue it to a byte-identical result *)
  | Truncate  (** the written checkpoint loses its second half *)

type chaos = {
  chaos_seed : int64;
  chaos_benches : string list;  (** input order *)
  injected_faults : (string * chaos_fault) list;
      (** seeded assignment: victims shuffled by the chaos seed, fault
          kinds dealt in declaration order *)
  poisoned_benches : string list;
      (** quarantined after the resume pass (expected: the stall) *)
  retried : int;  (** supervisor retries summed over both passes *)
  worker_crashes : int;
  corrupt_checkpoints : string list;
      (** damaged checkpoints the resume scan caught and re-ran *)
  resumed_from_snapshot : string list;
      (** benchmarks whose slot held a mid-run (suspended) snapshot
          when the resume pass started — expected: the kill victims,
          which must then end up in [survivors] *)
  survivors : string list;
      (** non-poisoned benchmarks whose final serialised results are
          byte-identical to the fault-free sequential reference *)
  mismatched : string list;  (** non-poisoned, but diverged — a bug *)
}

val chaos :
  ?jobs:int ->
  ?benches:Tpdbt_workloads.Spec.t list ->
  ?thresholds:(string * int) list ->
  ?max_steps:int ->
  ?progress:(string -> Runner.status -> unit) ->
  dir:string ->
  seed:int64 ->
  unit ->
  chaos
(** Run the chaos harness: a fault-free sequential reference sweep,
    then a supervised sweep under injected faults (checkpointing into
    [dir], whose [*.ckpt] files it deletes first — the harness owns the
    directory), then a resume pass over the damaged store.  Defaults:
    [jobs] 1, benchmarks gzip/swim/mgrid/art/mcf (one fault each:
    stall, crash, bitflip, panic, kill — truncate needs a sixth).
    Everything in the returned record is a pure function of
    [(benches, seed, max_steps)] — identical at every job count and
    across repeated runs; in particular the kill victim's suspension
    point, its snapshot and its resumed final results are the same at
    every [-j].
    @raise Invalid_argument if a benchmark fails without faults. *)

val chaos_ok : chaos -> bool
(** The pass criterion: no mismatches, poisoned = the stall victims
    exactly, corrupt = the checkpoint victims exactly, resumed = the
    kill victims exactly (whose results, like every survivor's, are
    byte-identical to the fault-free reference), and the crash and
    panic victims actually exercised recovery. *)

val chaos_fault_name : chaos_fault -> string

val chaos_to_json : chaos -> string
(** Deterministic summary (scheduling-dependent fields excluded) — the
    artifact [make chaos-smoke] compares across job counts. *)

val render_chaos : Format.formatter -> chaos -> unit
