type options = {
  socket : string;
  idle_timeout : float;
  server : Server.config;
}

let default_options =
  { socket = ".tpdbt.sock"; idle_timeout = 30.0; server = Server.default_config }

type conn = {
  fd : Unix.file_descr;
  client : int;
  dec : Frame.decoder;
  mutable last : float;  (** last byte received — the idle clock *)
}

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring fd s !pos (n - !pos)
  done

let run ?(log = fun _ -> ()) opts =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let term = ref false in
  let on_term = Sys.Signal_handle (fun _ -> term := true) in
  let prev_term = Sys.signal Sys.sigterm on_term in
  let prev_int = Sys.signal Sys.sigint on_term in
  if Sys.file_exists opts.socket then Sys.remove opts.socket;
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lsock (Unix.ADDR_UNIX opts.socket);
  Unix.listen lsock 16;
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_client = ref 0 in
  let buf = Bytes.create 65536 in
  (* [Server.create] needs the progress pump, and the pump needs the
     server — tie the knot through a forward cell. *)
  let pump_cell = ref (fun () -> ()) in
  let server =
    Server.create ~on_progress:(fun _ _ -> !pump_cell ()) opts.server
  in
  let drop c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove conns c.client;
    Server.disconnect server ~client:c.client
  in
  let send c payload =
    try write_all c.fd (Frame.encode payload)
    with Unix.Unix_error _ | Sys_error _ ->
      log (Printf.sprintf "client %d gone on write" c.client);
      drop c
  in
  (* Drain the decoder: answer inline replies, admit the rest.  A
     framing error gets one last [invalid] reply, then the connection
     dies — there is no resynchronising broken framing. *)
  let rec frames c =
    match Frame.next c.dec with
    | Ok None -> ()
    | Ok (Some payload) ->
        (match Server.offer server ~client:c.client payload with
        | Server.Reply r -> send c r
        | Server.Enqueued _ -> ());
        if Hashtbl.mem conns c.client then frames c
    | Error e ->
        log
          (Printf.sprintf "client %d framing damage: %s" c.client
             (Frame.error_to_string e));
        send c
          (Protocol.error_reply ~kind:"invalid"
             ("framing: " ^ Frame.error_to_string e));
        if Hashtbl.mem conns c.client then drop c
  in
  let pump ~timeout =
    if !term then Server.drain server;
    let fds =
      lsock :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) conns []
    in
    let readable, _, _ =
      try Unix.select fds [] [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let now = Unix.gettimeofday () in
    List.iter
      (fun fd ->
        if fd == lsock then begin
          match Unix.accept lsock with
          | exception Unix.Unix_error _ -> ()
          | cfd, _ ->
              let client = !next_client in
              incr next_client;
              Hashtbl.replace conns client
                {
                  fd = cfd;
                  client;
                  dec = Frame.decoder ~max_frame:opts.server.Server.max_frame ();
                  last = now;
                }
        end
        else
          match
            Hashtbl.fold
              (fun _ c acc -> if c.fd == fd then Some c else acc)
              conns None
          with
          | None -> ()
          | Some c -> (
              match Unix.read c.fd buf 0 (Bytes.length buf) with
              | exception Unix.Unix_error _ -> drop c
              | 0 -> drop c
              | n ->
                  c.last <- now;
                  Frame.feed c.dec (Bytes.sub_string buf 0 n);
                  frames c))
      readable;
    Hashtbl.fold
      (fun _ c acc ->
        if now -. c.last > opts.idle_timeout then c :: acc else acc)
      conns []
    |> List.iter (fun c ->
           log (Printf.sprintf "client %d idle, dropping" c.client);
           drop c)
  in
  pump_cell := (fun () -> pump ~timeout:0.0);
  log (Printf.sprintf "listening on %s" opts.socket);
  (try
     while not (Server.draining server && Server.idle server) do
       pump ~timeout:(if Server.idle server then 0.2 else 0.0);
       match Server.step server with
       | None -> ()
       | Some { Server.client = Some client; reply; _ } -> (
           match Hashtbl.find_opt conns client with
           | Some c -> send c reply
           | None -> ())
       | Some { Server.client = None; _ } -> ()
       (* journal-recovered orphan: results are in the checkpoint
          store; nobody is waiting on the reply *)
     done
   with e ->
     (* Crash-only: leave journal and checkpoints as they are — the
        next daemon recovers — but free the OS resources. *)
     Hashtbl.iter (fun _ c -> try Unix.close c.fd with _ -> ()) conns;
     (try Unix.close lsock with _ -> ());
     (try Sys.remove opts.socket with Sys_error _ -> ());
     ignore (Sys.signal Sys.sigterm prev_term);
     ignore (Sys.signal Sys.sigint prev_int);
     raise e);
  log "drained";
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with _ -> ()) conns;
  Server.close server;
  (try Unix.close lsock with _ -> ());
  (try Sys.remove opts.socket with Sys_error _ -> ());
  ignore (Sys.signal Sys.sigterm prev_term);
  ignore (Sys.signal Sys.sigint prev_int)

let request ~socket ?(max_frame = 64 * 1024 * 1024) payload =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("socket: " ^ Unix.error_message e)
  | fd -> (
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      try
        Unix.connect fd (Unix.ADDR_UNIX socket);
        write_all fd (Frame.encode payload);
        let dec = Frame.decoder ~max_frame () in
        let buf = Bytes.create 65536 in
        let rec read_reply () =
          match Frame.next dec with
          | Ok (Some reply) -> Ok reply
          | Error e -> Error ("reply framing: " ^ Frame.error_to_string e)
          | Ok None -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> Error "daemon closed the connection"
              | n ->
                  Frame.feed dec (Bytes.sub_string buf 0 n);
                  read_reply ())
        in
        let r = read_reply () in
        finally ();
        r
      with
      | Unix.Unix_error (e, fn, _) ->
          finally ();
          Error (fn ^ ": " ^ Unix.error_message e)
      | Sys_error msg ->
          finally ();
          Error msg)

(* Deterministic client backoff: the delay sequence is a pure function
   of (retries, seed), so retry behaviour is reproducible in tests and
   across a fleet of clients the seeds can be spread to avoid
   synchronised retry storms. *)
let retry_delays ~retries ~seed =
  let prng = Tpdbt_vm.Prng.create ~seed in
  List.init (max 0 retries) (fun k ->
      let base = 0.05 *. (2. ** float_of_int k) in
      base *. (0.5 +. Tpdbt_vm.Prng.float prng))
