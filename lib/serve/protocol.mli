(** The [tpdbt serve] request protocol: strictly validated JSON.

    A request is one JSON object per frame ({!Frame}) with a required
    ["op"] member naming the operation; the remaining members are
    op-specific, typed, and {e closed} — an unknown member, a duplicate
    member, a wrong type or an out-of-range value rejects the request
    with a descriptive [invalid] reply.  Strictness is the robustness
    property: a malformed or adversarial client can never crash the
    daemon or smuggle an half-understood request into execution; the
    worst it can achieve is an error reply (protocol damage) or a
    dropped connection (framing damage).

    Operations:
    - [ping] — liveness/readiness probe
    - [status] — serving-state snapshot (queue, counters, cache)
    - [metrics] — OpenMetrics exposition of the [serve.*] registry
    - [drain] — stop admitting work, finish what is queued, shut down
    - [translate] — assemble and translate a guest program
    - [run] — execute one suite workload under the two-phase engine
    - [sweep] — the paper's threshold sweep over suite benchmarks

    Replies are JSON objects with an ["ok"] boolean.  Failures carry
    ["kind"] — ["invalid"] (rejected request), ["overloaded"]
    (admission queue full — explicit backpressure), ["draining"]
    (daemon shutting down), ["internal"] (a bug, never expected) —
    and a human-readable ["error"]. *)

type request =
  | Ping
  | Status
  | Metrics
  | Drain
  | Translate of {
      program : string;  (** G32 assembly text *)
      threshold : int;
      seed : int64;
      max_steps : int option;
    }
  | Run of {
      workload : string;  (** suite benchmark name *)
      threshold : int;
      max_steps : int option;
    }
  | Sweep of {
      benches : string list;  (** empty = the whole suite *)
      max_steps : int option;
      return_results : bool;
          (** include each benchmark's serialised result in the reply
              (the checkpoint text — byte-comparable to an offline
              run); default true *)
    }

val parse_request : string -> (request, string) result
(** Strict parse: RFC 8259 syntax via {!Tpdbt_telemetry.Json.parse},
    then closed-schema validation.  [Error] carries the reason echoed
    in the [invalid] reply. *)

val op_name : request -> string
val expensive : request -> bool
(** Does the request go through the admission queue?  [translate],
    [run] and [sweep] do; probes and [drain] are answered inline. *)

val cache_key : request -> string option
(** Canonical warm-cache key for requests whose reply is a pure
    function of their parameters ([translate], [run]); [None]
    otherwise. *)

(** {2 Reply rendering} *)

val error_reply : kind:string -> string -> string
(** [{"ok":false,"kind":<kind>,"error":<msg>}]. *)

val overloaded_reply : queue:int -> limit:int -> string
val draining_reply : unit -> string
val ping_reply : ready:bool -> string
