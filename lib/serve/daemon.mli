(** The I/O shell around {!Server}: Unix-domain socket, signals,
    timeouts.

    Everything with serving semantics — admission, validation,
    execution, drain, recovery — lives in {!Server}; this module only
    moves bytes.  One frame ({!Frame}) carries one JSON request
    ({!Protocol}) and each reply is sent back as one frame on the same
    connection.

    Failure behaviour at the I/O layer:
    - {e framing damage} (garbage or oversized length header) — the
      connection is poisoned by the decoder and dropped after a final
      [invalid] reply; there is no resynchronising a broken byte
      stream;
    - {e client disconnect} — detected on read/write; the client's
      queued jobs still run (their results are checkpointed) but the
      replies are dropped;
    - {e idle connections} — closed after [idle_timeout] seconds of
      silence, so abandoned clients cannot pin file descriptors;
    - {e SIGTERM / SIGINT} — graceful drain: stop admitting expensive
      work, finish the queue, journal [Drained], exit;
    - {e SIGPIPE} — ignored (writes to dead peers surface as [EPIPE]
      and become disconnects).

    During a long sweep the daemon keeps breathing: {!Server}'s
    progress callback pumps socket I/O between benchmarks, so probes
    ([ping]/[status]/[metrics]) are answered and backpressure replies
    stay prompt even while the queue head is expensive. *)

type options = {
  socket : string;  (** Unix-domain socket path (stale files replaced) *)
  idle_timeout : float;  (** seconds of silence before a client is dropped *)
  server : Server.config;
}

val default_options : options
(** [.tpdbt.sock] in the working directory, 30 s idle timeout,
    {!Server.default_config}. *)

val run : ?log:(string -> unit) -> options -> unit
(** Serve until drained (a [drain] request or SIGTERM/SIGINT) and the
    queue is empty; then close every connection, journal the clean
    shutdown and remove the socket file.  [log] receives one-line
    lifecycle notes (default: silent).
    @raise Sys_error / [Unix.Unix_error] on listener setup failure
    (socket path unusable). *)

val request :
  socket:string -> ?max_frame:int -> string -> (string, string) result
(** One-shot client: connect, send one framed request, read one framed
    reply.  [max_frame] bounds the {e reply} (default 64 MiB — sweep
    replies carry whole checkpoint texts).  [Error] describes the
    transport failure (connect refused, daemon closed the connection,
    framing damage); protocol-level failures are [Ok] replies with
    [ok:false]. *)

val retry_delays : retries:int -> seed:int64 -> float list
(** The client's backoff schedule for [overloaded] replies: [retries]
    delays in seconds, exponential from 50 ms with seeded jitter in
    [0.5x, 1.5x) — a pure function of [(retries, seed)], so a retrying
    client ([tpdbt request --retries]) is deterministic given its seed
    while distinct seeds decorrelate a fleet's retry storms.  Empty
    for [retries <= 0]. *)
