module Spec = Tpdbt_workloads.Spec
module Suite = Tpdbt_workloads.Suite
module Runner = Tpdbt_experiments.Runner
module Checkpoint = Tpdbt_experiments.Checkpoint
module Supervisor = Tpdbt_parallel.Supervisor
module Error = Tpdbt_dbt.Error
module Json = Tpdbt_telemetry.Json
module Prng = Tpdbt_vm.Prng

type t = {
  seed : int64;
  benches : string list;
  crash_victim : string;
  stall_victim : string;
  framing_errors : int;
  invalid : int;
  warm_hit : bool;
  overloaded : int;
  queue_peak : int;
  queue_limit : int;
  dropped : int;
  crash_recovered : bool;
  poisoned : string list;
  killed_after : int;
  recovered_sweeps : int;
  journal_torn : int;
  resumed : int;
  drained : bool;
  survivors : string list;
  mismatched : string list;
}

exception Chaos_kill
(** The simulated SIGKILL: raised from the progress callback between
    benchmarks, unwinding through the sweep exactly as a fatal signal
    would — no [Sweep_end], no drain, no close. *)

let default_benches () =
  List.filter_map Suite.find [ "gzip"; "swim"; "mgrid"; "art" ]

(* Fisher–Yates under the chaos seed: victim assignment is part of the
   deterministic contract. *)
let shuffle prng xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = Prng.below prng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let member_string name payload =
  match Json.parse payload with
  | Error _ -> None
  | Ok doc -> Option.bind (Json.member name doc) Json.as_string

let member_number name payload =
  match Json.parse payload with
  | Error _ -> None
  | Ok doc -> Option.bind (Json.member name doc) Json.as_number

let member_strings name payload =
  match Json.parse payload with
  | Error _ -> None
  | Ok doc ->
      Option.bind (Json.member name doc) (fun v ->
          Option.map (List.filter_map Json.as_string) (Json.as_list v))

let rejected payload = member_string "kind" payload = Some "invalid"

let clean_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let ckpt = Filename.concat dir "ckpt" in
  if Sys.file_exists ckpt then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".ckpt" then
          Sys.remove (Filename.concat ckpt f))
      (Sys.readdir ckpt);
  let journal = Filename.concat dir "journal" in
  if Sys.file_exists journal then Sys.remove journal;
  (ckpt, journal)

let run ?benches ?max_steps ~dir ~seed () =
  let benches =
    match benches with Some bs -> bs | None -> default_benches ()
  in
  if List.length benches < 2 then
    invalid_arg "Chaos_serve.run: need at least two benchmarks";
  let names = List.map (fun (b : Spec.t) -> b.Spec.name) benches in
  let ckpt_dir, journal_path = clean_dir dir in
  let prng = Prng.create ~seed in
  let crash_victim, stall_victim =
    match shuffle prng names with
    | a :: b :: _ -> (a, b)
    | _ -> assert false
  in

  (* Fault-free offline reference: the byte-diff target. *)
  let reference_sweep = Runner.run_many ?max_steps benches in
  (match reference_sweep.Runner.failures with
  | [] -> ()
  | { Runner.failed; error } :: _ ->
      invalid_arg
        (Printf.sprintf "Chaos_serve.run: %s fails without faults: %s"
           failed.Spec.name (Error.to_string error)));
  let reference =
    List.map
      (fun (d : Runner.data) ->
        (d.Runner.bench.Spec.name, Checkpoint.data_to_string d))
      reference_sweep.Runner.data
  in

  (* The fault injectors, shared by both server generations. *)
  let finished = ref 0 in
  let resumed = ref 0 in
  let kill_arm = ref None in
  let on_progress _name status =
    match status with
    | Runner.Finished -> (
        incr finished;
        match !kill_arm with
        | Some n when !finished >= n -> raise Chaos_kill
        | _ -> ())
    | Runner.Resumed -> incr resumed
    | Runner.Started | Runner.Suspended | Runner.Failed _ | Runner.Quarantined _
      ->
        ()
  in
  let run_task ~task:_ ~attempt (spec : Spec.t) =
    if String.equal spec.Spec.name stall_victim then
      Result.Error (Error.Deadline_exceeded { steps = 0; deadline = 1 })
    else if String.equal spec.Spec.name crash_victim && attempt = 1 then
      raise Supervisor.Crash_worker
    else Runner.run_benchmark_result ?max_steps spec
  in
  let config =
    {
      Server.default_config with
      Server.queue_limit = 2;
      checkpoint_dir = Some ckpt_dir;
      journal_path = Some journal_path;
    }
  in
  let server = Server.create ~run_task ~on_progress config in

  (* Request builders — strict-schema JSON, like a well-behaved
     client's. *)
  let steps_field =
    match max_steps with
    | None -> []
    | Some n -> [ ("max_steps", string_of_int n) ]
  in
  let r_run workload threshold =
    Json.obj
      ([
         ("op", Json.quote "run");
         ("workload", Json.quote workload);
         ("threshold", string_of_int threshold);
       ]
      @ steps_field)
  in
  let r_sweep =
    Json.obj
      ([
         ("op", Json.quote "sweep");
         ("benches", Json.arr (List.map Json.quote names));
         ("return_results", "false");
       ]
      @ steps_field)
  in
  let first_bench = List.hd names in

  (* --- phase 1: framing damage poisons decoders ---------------------- *)
  let framing_errors = ref 0 in
  let feed_bad bytes =
    let dec = Frame.decoder ~max_frame:1024 () in
    Frame.feed dec bytes;
    match Frame.next dec with
    | Result.Error _ -> incr framing_errors
    | Ok _ -> ()
  in
  feed_bad "not a length\n{}";
  feed_bad "99999999999\n";

  (* --- phase 2: protocol damage is rejected, server keeps serving --- *)
  let invalid = ref 0 in
  let offer_bad client payload =
    match Server.offer server ~client payload with
    | Server.Reply r when rejected r -> incr invalid
    | Server.Reply _ | Server.Enqueued _ -> ()
  in
  let garbage =
    String.init 24 (fun _ -> Char.chr (33 + Prng.below prng 94))
  in
  List.iter (offer_bad 0)
    [
      "{";
      garbage;
      Json.obj [ ("op", Json.quote "run") ];
      Json.obj
        [
          ("op", Json.quote "run");
          ("workload", Json.quote first_bench);
          ("bogus", "1");
        ];
      Json.obj [ ("op", Json.quote "launch") ];
      Json.obj [ ("op", Json.quote "run"); ("workload", Json.quote "") ];
      Json.obj
        [
          ("op", Json.quote "run");
          ("workload", Json.quote first_bench);
          ("threshold", "-3");
        ];
      Json.obj
        [
          ("op", Json.quote "run");
          ("workload", Json.quote first_bench);
          ("max_steps", "1.5");
        ];
      "{\"op\":\"ping\",\"op\":\"ping\"}";
    ];
  (* Semantic rejection happens at execution: an unknown benchmark is
     admitted (the schema cannot know the suite) and answered
     [invalid] from the queue. *)
  (match Server.offer server ~client:0 (r_run "no-such-bench" 20) with
  | Server.Enqueued _ -> (
      match Server.step server with
      | Some { Server.reply; _ } when rejected reply -> incr invalid
      | _ -> ())
  | Server.Reply _ -> ());
  let alive =
    match Server.offer server ~client:0 "{\"op\":\"ping\"}" with
    | Server.Reply r -> member_string "op" r = Some "ping"
    | Server.Enqueued _ -> false
  in

  (* --- phase 3: warm cache — repeat is byte-identical ---------------- *)
  let exec_one client payload =
    match Server.offer server ~client payload with
    | Server.Reply r -> Some r
    | Server.Enqueued _ ->
        Option.map (fun s -> s.Server.reply) (Server.step server)
  in
  let warm_req = r_run first_bench 21 in
  let cold = exec_one 1 warm_req in
  let warm = exec_one 1 warm_req in
  let cache_hits =
    match Server.offer server ~client:1 "{\"op\":\"status\"}" with
    | Server.Reply r ->
        int_of_float (Option.value ~default:0.0 (member_number "cache_hits" r))
    | Server.Enqueued _ -> 0
  in
  let warm_hit =
    match (cold, warm) with
    | Some a, Some b -> String.equal a b && cache_hits >= 1
    | _ -> false
  in

  (* --- phase 4: overload — bounded queue, explicit backpressure ------ *)
  let overloaded = ref 0 in
  List.iteri
    (fun i name ->
      match Server.offer server ~client:2 (r_run name (31 + i)) with
      | Server.Reply r when member_string "kind" r = Some "overloaded" ->
          incr overloaded
      | Server.Reply _ | Server.Enqueued _ -> ())
    (names @ [ first_bench ]);
  while not (Server.idle server) do
    ignore (Server.step server)
  done;

  (* --- phase 5: client dies with work queued ------------------------- *)
  let dropped = ref 0 in
  (match Server.offer server ~client:3 (r_run first_bench 41) with
  | Server.Enqueued _ ->
      Server.disconnect server ~client:3;
      (match Server.step server with
      | Some { Server.delivered = false; _ } -> incr dropped
      | Some _ | None -> ())
  | Server.Reply _ -> ());

  (* --- phase 6: kill mid-sweep, then damage the journal tail --------- *)
  kill_arm := Some 2;
  finished := 0;
  let killed_after =
    match Server.offer server ~client:4 r_sweep with
    | Server.Reply _ -> 0
    | Server.Enqueued _ -> (
        match Server.step server with
        | exception Chaos_kill -> !finished
        | _ -> 0)
  in
  kill_arm := None;
  (* The dead server's journal now ends in a [Sweep_begin] with no
     [Sweep_end]; tear its tail the way a crashed disk would. *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 journal_path
  in
  output_string oc ("R deadbeef 9 " ^ garbage);
  close_out oc;

  (* --- phase 7: restart — truncate, recover, re-run as orphan -------- *)
  let server2 = Server.create ~run_task ~on_progress config in
  let recovered_sweeps = List.length (Server.recovered server2) in
  let journal_torn =
    match Server.offer server2 ~client:0 "{\"op\":\"status\"}" with
    | Server.Reply r ->
        int_of_float
          (Option.value ~default:0.0 (member_number "journal_torn" r))
    | Server.Enqueued _ -> 0
  in
  resumed := 0;
  let last_reply = ref None in
  let rec drain_queue () =
    match Server.step server2 with
    | Some { Server.client = None; reply; _ } ->
        last_reply := Some reply;
        drain_queue ()
    | Some _ -> drain_queue ()
    | None -> ()
  in
  drain_queue ();
  let poisoned =
    match !last_reply with
    | None -> []
    | Some reply -> Option.value ~default:[] (member_strings "poisoned" reply)
  in

  (* --- phase 8: graceful drain --------------------------------------- *)
  let drain_refused =
    match Server.offer server2 ~client:5 "{\"op\":\"drain\"}" with
    | Server.Reply _ -> (
        match Server.offer server2 ~client:5 (r_run first_bench 51) with
        | Server.Reply r -> member_string "kind" r = Some "draining"
        | Server.Enqueued _ -> false)
    | Server.Enqueued _ -> false
  in
  Server.close server2;
  let drained =
    let j, recovery = Journal.open_ ~path:journal_path in
    Journal.close j;
    drain_refused && recovery.Journal.inflight = []
    && recovery.Journal.torn = 0
  in

  (* --- verdict: byte-diff every non-poisoned benchmark --------------- *)
  let survivors, mismatched =
    List.fold_left
      (fun (ok, bad) (b : Spec.t) ->
        let name = b.Spec.name in
        if String.equal name stall_victim then (ok, bad)
        else
          match
            (Checkpoint.load ~dir:ckpt_dir b, List.assoc_opt name reference)
          with
          | Some d, Some want
            when String.equal (Checkpoint.data_to_string d) want ->
              (name :: ok, bad)
          | _ -> (ok, name :: bad))
      ([], []) benches
  in
  let survivors = List.rev survivors and mismatched = List.rev mismatched in
  let crash_recovered = List.mem crash_victim survivors in
  ignore alive;
  {
    seed;
    benches = names;
    crash_victim;
    stall_victim;
    framing_errors = !framing_errors;
    invalid = (if alive then !invalid else 0);
    warm_hit;
    overloaded = !overloaded;
    queue_peak = Server.queue_peak server;
    queue_limit = config.Server.queue_limit;
    dropped = !dropped;
    crash_recovered;
    poisoned;
    killed_after;
    recovered_sweeps;
    journal_torn;
    resumed = !resumed;
    drained;
    survivors;
    mismatched;
  }

let ok t =
  t.mismatched = []
  && t.survivors = List.filter (fun n -> n <> t.stall_victim) t.benches
  && t.poisoned = [ t.stall_victim ]
  && t.crash_recovered && t.framing_errors > 0 && t.invalid > 0 && t.warm_hit
  && t.overloaded > 0
  && t.queue_peak <= t.queue_limit
  && t.dropped > 0 && t.killed_after > 0 && t.recovered_sweeps = 1
  && t.journal_torn > 0 && t.resumed > 0 && t.drained

let to_json t =
  let strs xs = Json.arr (List.map Json.quote xs) in
  Json.obj
    [
      ("seed", Printf.sprintf "%Ld" t.seed);
      ("benches", strs t.benches);
      ("crash_victim", Json.quote t.crash_victim);
      ("stall_victim", Json.quote t.stall_victim);
      ("framing_errors", string_of_int t.framing_errors);
      ("invalid", string_of_int t.invalid);
      ("warm_hit", if t.warm_hit then "true" else "false");
      ("overloaded", string_of_int t.overloaded);
      ("queue_peak", string_of_int t.queue_peak);
      ("queue_limit", string_of_int t.queue_limit);
      ("dropped", string_of_int t.dropped);
      ("crash_recovered", if t.crash_recovered then "true" else "false");
      ("poisoned", strs t.poisoned);
      ("killed_after", string_of_int t.killed_after);
      ("recovered_sweeps", string_of_int t.recovered_sweeps);
      ("journal_torn", string_of_int t.journal_torn);
      ("resumed", string_of_int t.resumed);
      ("drained", if t.drained then "true" else "false");
      ("survivors", strs t.survivors);
      ("mismatched", strs t.mismatched);
      ("ok", if ok t then "true" else "false");
    ]

let render ppf t =
  let yn b = if b then "yes" else "no" in
  Format.fprintf ppf "chaos-serve seed=%Ld benches=%s@."
    t.seed (String.concat "," t.benches);
  Format.fprintf ppf "  victims: crash=%s stall=%s@." t.crash_victim
    t.stall_victim;
  Format.fprintf ppf
    "  protocol: framing_errors=%d invalid=%d warm_hit=%s@."
    t.framing_errors t.invalid (yn t.warm_hit);
  Format.fprintf ppf
    "  overload: overloaded=%d queue_peak=%d/%d dropped=%d@." t.overloaded
    t.queue_peak t.queue_limit t.dropped;
  Format.fprintf ppf
    "  recovery: killed_after=%d recovered=%d torn=%d resumed=%d \
     crash_recovered=%s@."
    t.killed_after t.recovered_sweeps t.journal_torn t.resumed
    (yn t.crash_recovered);
  Format.fprintf ppf "  poisoned: %s@."
    (match t.poisoned with [] -> "-" | ps -> String.concat "," ps);
  Format.fprintf ppf "  drained: %s@." (yn t.drained);
  Format.fprintf ppf "  survivors: %s@."
    (match t.survivors with [] -> "-" | ss -> String.concat "," ss);
  (match t.mismatched with
  | [] -> ()
  | ms -> Format.fprintf ppf "  MISMATCHED: %s@." (String.concat "," ms));
  Format.fprintf ppf "  verdict: %s@." (if ok t then "OK" else "FAILED")
