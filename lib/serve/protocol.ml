module Json = Tpdbt_telemetry.Json

type request =
  | Ping
  | Status
  | Metrics
  | Drain
  | Translate of {
      program : string;
      threshold : int;
      seed : int64;
      max_steps : int option;
    }
  | Run of { workload : string; threshold : int; max_steps : int option }
  | Sweep of {
      benches : string list;
      max_steps : int option;
      return_results : bool;
    }

let op_name = function
  | Ping -> "ping"
  | Status -> "status"
  | Metrics -> "metrics"
  | Drain -> "drain"
  | Translate _ -> "translate"
  | Run _ -> "run"
  | Sweep _ -> "sweep"

let expensive = function
  | Translate _ | Run _ | Sweep _ -> true
  | Ping | Status | Metrics | Drain -> false

(* ---- strict validation ------------------------------------------------- *)

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

let members = function
  | Json.Obj ms -> ms
  | _ -> reject "request must be a JSON object"

(* A closed schema: every member must be in [allowed], duplicates are
   rejected, and each extractor sees [Some v] iff its member is
   present. *)
let check_schema ~op ~allowed ms =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (k, _) ->
      if Hashtbl.mem seen k then reject "duplicate member %S" k;
      Hashtbl.replace seen k ();
      if not (List.mem k ("op" :: allowed)) then
        reject "unknown member %S for op %S" k op)
    ms

let find name ms = List.assoc_opt name ms

let get_string ~what = function
  | None -> None
  | Some (Json.Str s) -> Some s
  | Some _ -> reject "%s must be a string" what

let integral ~what v =
  if Float.is_integer v && Float.abs v <= 1e15 then Int64.of_float v
  else reject "%s must be an integer" what

let get_int ~what = function
  | None -> None
  | Some (Json.Num v) -> Some (Int64.to_int (integral ~what v))
  | Some _ -> reject "%s must be a number" what

let get_int64 ~what = function
  | None -> None
  | Some (Json.Num v) -> Some (integral ~what v)
  | Some _ -> reject "%s must be a number" what

let get_bool ~what = function
  | None -> None
  | Some (Json.Bool b) -> Some b
  | Some _ -> reject "%s must be a boolean" what

let get_string_list ~what = function
  | None -> None
  | Some (Json.Arr vs) ->
      Some
        (List.map
           (function
             | Json.Str s when s <> "" -> s
             | Json.Str _ -> reject "%s must not contain empty strings" what
             | _ -> reject "%s must be an array of strings" what)
           vs)
  | Some _ -> reject "%s must be an array" what

let positive ~what = function
  | None -> None
  | Some n when n > 0 -> Some n
  | Some n -> reject "%s must be positive (got %d)" what n

let non_negative ~what ~default = function
  | None -> default
  | Some n when n >= 0 -> n
  | Some n -> reject "%s must be non-negative (got %d)" what n

let parse_request text =
  match Json.parse text with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok doc -> (
      try
        let ms = members doc in
        let op =
          match get_string ~what:"\"op\"" (find "op" ms) with
          | Some op -> op
          | None -> reject "missing \"op\" member"
        in
        let schema allowed = check_schema ~op ~allowed ms in
        match op with
        | "ping" ->
            schema [];
            Ok Ping
        | "status" ->
            schema [];
            Ok Status
        | "metrics" ->
            schema [];
            Ok Metrics
        | "drain" ->
            schema [];
            Ok Drain
        | "translate" ->
            schema [ "program"; "threshold"; "seed"; "max_steps" ];
            let program =
              match get_string ~what:"\"program\"" (find "program" ms) with
              | Some p when String.trim p <> "" -> p
              | Some _ -> reject "\"program\" must not be empty"
              | None -> reject "missing \"program\" member"
            in
            Ok
              (Translate
                 {
                   program;
                   threshold =
                     non_negative ~what:"\"threshold\"" ~default:1000
                       (get_int ~what:"\"threshold\"" (find "threshold" ms));
                   seed =
                     Option.value ~default:1L
                       (get_int64 ~what:"\"seed\"" (find "seed" ms));
                   max_steps =
                     positive ~what:"\"max_steps\""
                       (get_int ~what:"\"max_steps\"" (find "max_steps" ms));
                 })
        | "run" ->
            schema [ "workload"; "threshold"; "max_steps" ];
            let workload =
              match get_string ~what:"\"workload\"" (find "workload" ms) with
              | Some w when w <> "" -> w
              | Some _ -> reject "\"workload\" must not be empty"
              | None -> reject "missing \"workload\" member"
            in
            Ok
              (Run
                 {
                   workload;
                   threshold =
                     non_negative ~what:"\"threshold\"" ~default:20
                       (get_int ~what:"\"threshold\"" (find "threshold" ms));
                   max_steps =
                     positive ~what:"\"max_steps\""
                       (get_int ~what:"\"max_steps\"" (find "max_steps" ms));
                 })
        | "sweep" ->
            schema [ "benches"; "max_steps"; "return_results" ];
            Ok
              (Sweep
                 {
                   benches =
                     Option.value ~default:[]
                       (get_string_list ~what:"\"benches\""
                          (find "benches" ms));
                   max_steps =
                     positive ~what:"\"max_steps\""
                       (get_int ~what:"\"max_steps\"" (find "max_steps" ms));
                   return_results =
                     Option.value ~default:true
                       (get_bool ~what:"\"return_results\""
                          (find "return_results" ms));
                 })
        | "fuzz" ->
            (* Named so the refusal is precise: differential fuzzing is
               a CLI-side campaign (it owns a corpus directory and an
               exit code), not a service op.  Like every other unknown
               or unsupported op this must come back as a clean
               [invalid] reply, never [internal]. *)
            reject
              "op \"fuzz\" is not served; run the tpdbt fuzz subcommand \
               locally"
        | op -> reject "unknown op %S" op
      with Reject msg -> Error msg)

let cache_key = function
  | Run { workload; threshold; max_steps } ->
      Some
        (Printf.sprintf "run %s %d %s" workload threshold
           (match max_steps with None -> "-" | Some n -> string_of_int n))
  | Translate { program; threshold; seed; max_steps } ->
      Some
        (Printf.sprintf "translate %d %Ld %s %s" threshold seed
           (match max_steps with None -> "-" | Some n -> string_of_int n)
           program)
  | Ping | Status | Metrics | Drain | Sweep _ -> None

(* ---- replies ----------------------------------------------------------- *)

let error_reply ~kind msg =
  Json.obj
    [ ("ok", "false"); ("kind", Json.quote kind); ("error", Json.quote msg) ]

let overloaded_reply ~queue ~limit =
  Json.obj
    [
      ("ok", "false");
      ("kind", Json.quote "overloaded");
      ( "error",
        Json.quote
          (Printf.sprintf "admission queue full (%d of %d)" queue limit) );
      ("queue", string_of_int queue);
      ("queue_limit", string_of_int limit);
    ]

let draining_reply () =
  Json.obj
    [
      ("ok", "false");
      ("kind", Json.quote "draining");
      ("error", Json.quote "daemon is draining; no new work admitted");
    ]

let ping_reply ~ready =
  Json.obj
    [
      ("ok", "true");
      ("op", Json.quote "ping");
      ("ready", if ready then "true" else "false");
    ]
