let default_max_frame = 4 * 1024 * 1024

(* The header is a decimal length; 10 digits already exceed any
   permitted frame, so a longer run of digits (or any non-digit before
   the newline) is framing damage, not a large request. *)
let max_header_digits = 10

let encode payload =
  string_of_int (String.length payload) ^ "\n" ^ payload

type error = Oversize of int | Bad_header of string

let error_to_string = function
  | Oversize n -> Printf.sprintf "frame of %d bytes exceeds the limit" n
  | Bad_header h -> Printf.sprintf "malformed frame header %S" h

type state =
  | Header  (** accumulating digits until '\n' *)
  | Payload of int  (** reading this many bytes *)
  | Poisoned of error

type decoder = {
  max_frame : int;
  buf : Buffer.t;
  mutable state : state;
}

let decoder ?(max_frame = default_max_frame) () =
  if max_frame <= 0 then invalid_arg "Frame.decoder: max_frame <= 0";
  { max_frame; buf = Buffer.create 256; state = Header }

let feed d bytes =
  match d.state with
  | Poisoned _ -> ()
  | Header | Payload _ -> Buffer.add_string d.buf bytes

let buffered d = Buffer.length d.buf

(* Drop the first [n] bytes of the buffer. *)
let consume d n =
  let rest = Buffer.sub d.buf n (Buffer.length d.buf - n) in
  Buffer.clear d.buf;
  Buffer.add_string d.buf rest

let poison d err =
  d.state <- Poisoned err;
  Buffer.clear d.buf;
  Error err

let parse_header d line =
  let bad () = poison d (Bad_header line) in
  if line = "" || String.length line > max_header_digits then bad ()
  else if not (String.for_all (fun c -> c >= '0' && c <= '9') line) then bad ()
  else
    match int_of_string_opt line with
    | None -> bad ()
    | Some n when n > d.max_frame -> poison d (Oversize n)
    | Some n ->
        d.state <- Payload n;
        Ok ()

let rec next d =
  match d.state with
  | Poisoned e -> Error e
  | Header -> (
      let contents = Buffer.contents d.buf in
      match String.index_opt contents '\n' with
      | None ->
          (* No newline yet: bound what a silent client can buffer. *)
          if Buffer.length d.buf > max_header_digits then
            poison d (Bad_header contents)
          else Ok None
      | Some i -> (
          let line = String.sub contents 0 i in
          consume d (i + 1);
          match parse_header d line with
          | Error e -> Error e
          | Ok () -> next d))
  | Payload n ->
      if Buffer.length d.buf < n then Ok None
      else begin
        let payload = Buffer.sub d.buf 0 n in
        consume d n;
        d.state <- Header;
        Ok (Some payload)
      end
