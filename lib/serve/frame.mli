(** Length-prefixed framing for the [tpdbt serve] wire protocol.

    A frame is an ASCII decimal byte length, a single ['\n'], then
    exactly that many payload bytes.  The length line is the only
    metadata: it keeps the protocol trivially incremental (a reader
    knows exactly how many bytes remain) and gives the server a cheap,
    early admission check — an oversized or non-numeric header is
    rejected {e before} any payload is buffered, so a hostile client
    cannot make the daemon allocate unboundedly.

    Decoding is deliberately unforgiving: framing damage (garbage
    header, oversize length) poisons the decoder.  There is no way to
    resynchronise a byte stream whose framing has been lost, so the
    connection must be dropped — the error is sticky and reported on
    every subsequent poll. *)

val default_max_frame : int
(** 4 MiB — far above any legitimate request, far below trouble. *)

val encode : string -> string
(** [encode payload] is ["<len>\n<payload>"]. *)

type error =
  | Oversize of int  (** declared length exceeds the decoder's limit *)
  | Bad_header of string  (** length line empty, non-numeric, or absurd *)

val error_to_string : error -> string

type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** A fresh incremental decoder.  [max_frame] defaults to
    {!default_max_frame}.
    @raise Invalid_argument if [max_frame <= 0]. *)

val feed : decoder -> string -> unit
(** Append received bytes.  Bytes fed after a framing error are
    discarded. *)

val next : decoder -> (string option, error) result
(** Poll one complete frame: [Ok (Some payload)] when a full frame is
    buffered, [Ok None] when more bytes are needed.  Once an [Error]
    is returned the decoder is poisoned and returns it forever. *)

val buffered : decoder -> int
(** Bytes currently held (header + partial payload) — the per-client
    memory bound the daemon enforces. *)
