(** Chaos harness for the serving path: every failure mode the daemon
    claims to survive, injected deterministically, verified by
    byte-diff.

    Where {!Tpdbt_experiments.Campaign.chaos} attacks the {e batch}
    sweep infrastructure, this harness attacks the {e service}: it
    drives the {!Server} state machine directly (no sockets — the
    {!Daemon} shell contributes nothing to serving semantics) through
    a seeded scenario:

    + {e protocol damage} — framing garbage, oversized headers, broken
      JSON, schema violations: all rejected, the server keeps serving;
    + {e warm-cache coherence} — a repeated request is answered from
      the shared cache, byte-identical to its cold computation;
    + {e overload} — more expensive requests than the admission queue
      holds: the excess is refused with [overloaded] {e immediately}
      and queue depth never exceeds the configured bound;
    + {e client death} — a client disconnects with work queued: the
      work completes (checkpointed), the reply is dropped;
    + {e worker crash and stall} — a sweep whose tasks crash a worker
      domain and persistently stall: the crash recovers via the
      supervisor, the stall is quarantined;
    + {e kill mid-sweep} — the process "dies" (a simulated SIGKILL)
      between benchmarks, and the journal tail is damaged for good
      measure: a restarted server truncates the torn record, re-runs
      the in-flight sweep as an orphan, and resumes finished
      benchmarks from their checkpoints;
    + {e graceful drain} — new work is refused, the queue finishes,
      the journal records the clean shutdown.

    The verdict is the repo's standard one: every non-poisoned
    benchmark's final checkpoint must be byte-identical to a fault-free
    offline sweep ({!Tpdbt_experiments.Checkpoint.data_to_string}).
    Everything in the result is a pure function of
    [(benches, seed, max_steps)]. *)

type t = {
  seed : int64;
  benches : string list;  (** input order *)
  crash_victim : string;  (** seeded: crashes its worker once *)
  stall_victim : string;  (** seeded: stalls on every attempt *)
  framing_errors : int;  (** poisoned decoders (garbage/oversize) *)
  invalid : int;  (** requests rejected by the strict validator *)
  warm_hit : bool;  (** repeat answered from cache, byte-identical *)
  overloaded : int;  (** backpressure replies under overload *)
  queue_peak : int;  (** must stay <= the configured bound *)
  queue_limit : int;
  dropped : int;  (** replies to the killed client *)
  crash_recovered : bool;  (** crash victim finished after retry *)
  poisoned : string list;  (** quarantined in the recovery sweep *)
  killed_after : int;  (** benchmarks finished before the kill *)
  recovered_sweeps : int;  (** in-flight sweeps re-enqueued on restart *)
  journal_torn : int;  (** damaged journal records truncated away *)
  resumed : int;  (** benchmarks restored from checkpoints, not re-run *)
  drained : bool;  (** final journal ends with a clean [Drained] *)
  survivors : string list;
      (** non-poisoned benchmarks byte-identical to the offline run *)
  mismatched : string list;  (** non-poisoned but diverged — a bug *)
}

val run :
  ?benches:Tpdbt_workloads.Spec.t list ->
  ?max_steps:int ->
  dir:string ->
  seed:int64 ->
  unit ->
  t
(** Run the scenario in [dir] (owned by the harness: its [ckpt/]
    checkpoints and [journal] are deleted first).  Defaults: the batch
    chaos quartet gzip/swim/mgrid/art.
    @raise Invalid_argument if a benchmark fails without faults. *)

val ok : t -> bool
(** The pass criterion: no mismatches; survivors = everything but the
    stall victim; the stall victim is the one poisoned benchmark; the
    crash recovered; protocol damage was rejected ([framing_errors]
    and [invalid] non-zero) with the server still serving; overload
    produced backpressure with [queue_peak <= queue_limit]; the killed
    client's reply was dropped; exactly one sweep was recovered after
    the kill with the torn journal truncated; at least one benchmark
    resumed from its checkpoint; the warm cache hit byte-identically;
    the final shutdown was clean. *)

val to_json : t -> string
(** Deterministic summary — the artifact the chaos-serve CI leg
    uploads and [make serve-smoke] inspects. *)

val render : Format.formatter -> t -> unit
