module Engine = Tpdbt_dbt.Engine
module Error = Tpdbt_dbt.Error
module Perf_model = Tpdbt_dbt.Perf_model
module Profile_io = Tpdbt_profiles.Profile_io
module Spec = Tpdbt_workloads.Spec
module Suite = Tpdbt_workloads.Suite
module Runner = Tpdbt_experiments.Runner
module Checkpoint = Tpdbt_experiments.Checkpoint
module Json = Tpdbt_telemetry.Json
module Metrics = Tpdbt_telemetry.Metrics
module Openmetrics = Tpdbt_telemetry.Openmetrics

type config = {
  queue_limit : int;
  max_frame : int;
  jobs : int;
  deadline : int option;
  max_steps : int option;
  warm_capacity : int;
  checkpoint_dir : string option;
  journal_path : string option;
  snapshot_every : int;
}

let default_config =
  {
    queue_limit = 8;
    max_frame = Frame.default_max_frame;
    jobs = 1;
    deadline = None;
    max_steps = None;
    warm_capacity = 1_000_000;
    checkpoint_dir = None;
    journal_path = None;
    snapshot_every = 0;
  }

type job = {
  job_id : int;
  job_client : int option;
  job_req : Protocol.request;
  job_journal : int option;  (** journal id to close with [Sweep_end] *)
}

type t = {
  config : config;
  reg : Metrics.t;
  warm : Warm_cache.t;
  journal : Journal.t option;
  journal_lock : Mutex.t;
      (** snapshot refs are appended from worker domains mid-sweep;
          every other append happens on the calling domain *)
  recovered : (int * string list) list;
  recovered_snapshots : (int * string) list;
  queue : job Queue.t;
  dead : (int, unit) Hashtbl.t;  (** disconnected clients *)
  run_task :
    (task:int ->
    attempt:int ->
    Spec.t ->
    (Runner.data, Error.t) result)
    option;
  on_progress : (string -> Runner.status -> unit) option;
  mutable draining : bool;
  mutable next_id : int;
  mutable peak : int;
  mutable now : int;  (** request counter — the warm cache's clock *)
}

(* ---- telemetry --------------------------------------------------------- *)

let c t name = Metrics.counter t.reg name
let incr t name = Metrics.incr (c t name)
let cval t name = Metrics.counter_value (c t name)

let steps_hist t =
  Metrics.histogram t.reg "serve.request_steps"
    ~buckets:[ 100.; 1_000.; 10_000.; 100_000.; 1e6; 1e7 ]

let refresh_gauges t =
  Metrics.set (Metrics.gauge t.reg "serve.queue_depth")
    (float_of_int (Queue.length t.queue));
  Metrics.set (Metrics.gauge t.reg "serve.queue_peak") (float_of_int t.peak);
  Metrics.set (Metrics.gauge t.reg "serve.draining")
    (if t.draining then 1.0 else 0.0);
  Metrics.set (Metrics.gauge t.reg "serve.cache.used")
    (float_of_int (Warm_cache.used t.warm));
  Metrics.set
    (Metrics.gauge t.reg "serve.cache.entries")
    (float_of_int (Warm_cache.entries t.warm))

(* ---- creation / recovery ---------------------------------------------- *)

let create ?run_task ?on_progress config =
  let journal, recovery =
    match config.journal_path with
    | None ->
        ( None,
          { Journal.records = 0; torn = 0; inflight = []; snapshot_refs = [] }
        )
    | Some path ->
        let j, r = Journal.open_ ~path in
        (Some j, r)
  in
  let t =
    {
      config;
      reg = Metrics.create ();
      warm = Warm_cache.create ~capacity:config.warm_capacity;
      journal;
      journal_lock = Mutex.create ();
      recovered = recovery.Journal.inflight;
      recovered_snapshots = recovery.Journal.snapshot_refs;
      queue = Queue.create ();
      dead = Hashtbl.create 16;
      run_task;
      on_progress;
      draining = false;
      next_id =
        1
        + List.fold_left
            (fun acc (id, _) -> max acc id)
            0 recovery.Journal.inflight;
      peak = 0;
      now = 0;
    }
  in
  Metrics.add (c t "serve.journal.records") recovery.Journal.records;
  Metrics.add (c t "serve.journal.torn") recovery.Journal.torn;
  Metrics.add
    (c t "serve.journal.snapshot_refs")
    (List.length recovery.Journal.snapshot_refs);
  (* Re-enqueue in-flight sweeps as orphans: no client to answer, but
     the work completes and lands in the checkpoint store exactly as
     if the predecessor had never been killed.  Recovery bypasses the
     admission bound — it is our own debt, not new client load. *)
  List.iter
    (fun (id, benches) ->
      incr t "serve.recovered";
      Queue.add
        {
          job_id = id;
          job_client = None;
          job_req =
            Protocol.Sweep
              { benches; max_steps = None; return_results = false };
          job_journal = Some id;
        }
        t.queue)
    t.recovered;
  t.peak <- Queue.length t.queue;
  refresh_gauges t;
  t

let journal_append t r =
  match t.journal with
  | None -> ()
  | Some j ->
      Mutex.lock t.journal_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.journal_lock)
        (fun () ->
          Journal.append j r;
          incr t "serve.journal.records")

(* ---- execution --------------------------------------------------------- *)

let effective_max_steps t request_max =
  match (request_max, t.config.max_steps) with
  | Some r, Some cap -> Some (min r cap)
  | Some r, None -> Some r
  | None, cap -> cap

let engine_config t ~threshold ~max_steps =
  let config = Engine.config ~threshold ?deadline:t.config.deadline () in
  match effective_max_steps t max_steps with
  | Some n -> { config with Engine.max_steps = n }
  | None -> config

let error_field = function
  | None -> "null"
  | Some e -> Json.quote (Error.to_string e)

let outputs_field outputs = Json.arr (List.map string_of_int outputs)

let exec_run t ~workload ~threshold ~max_steps =
  match Suite.find workload with
  | None ->
      ( Protocol.error_reply ~kind:"invalid"
          ("unknown benchmark: " ^ workload),
        None )
  | Some bench ->
      let config = engine_config t ~threshold ~max_steps in
      let r = Runner.run_ref bench ~config in
      Metrics.observe (steps_hist t) (float_of_int r.Engine.steps);
      ( Json.obj
          [
            ("ok", "true");
            ("op", Json.quote "run");
            ("workload", Json.quote workload);
            ("threshold", string_of_int threshold);
            ("steps", string_of_int r.Engine.steps);
            ("cycles", Json.number r.Engine.counters.Perf_model.cycles);
            ( "regions",
              string_of_int r.Engine.counters.Perf_model.regions_formed );
            ("outputs", outputs_field r.Engine.outputs);
            ("error", error_field r.Engine.error);
          ],
        Some r.Engine.counters.Perf_model.cache_peak_instrs )

let exec_translate t ~program ~threshold ~seed ~max_steps =
  match Tpdbt_isa.Assembler.assemble program with
  | Error msg ->
      (Protocol.error_reply ~kind:"invalid" ("assembly rejected: " ^ msg), None)
  | Ok prog -> (
      let config = engine_config t ~threshold ~max_steps in
      let engine = Engine.create ~config ~seed prog in
      match Engine.run engine with
      | exception e ->
          (* The engine's guest-reachable paths return typed errors;
             an escaped exception is a bug, reported — never fatal to
             the daemon. *)
          ( Protocol.error_reply ~kind:"internal" (Printexc.to_string e),
            None )
      | r ->
          Metrics.observe (steps_hist t) (float_of_int r.Engine.steps);
          ( Json.obj
              [
                ("ok", "true");
                ("op", Json.quote "translate");
                ("threshold", string_of_int threshold);
                ("steps", string_of_int r.Engine.steps);
                ( "blocks",
                  string_of_int r.Engine.counters.Perf_model.blocks_translated
                );
                ( "regions",
                  string_of_int r.Engine.counters.Perf_model.regions_formed );
                ("cycles", Json.number r.Engine.counters.Perf_model.cycles);
                ("outputs", outputs_field r.Engine.outputs);
                ("error", error_field r.Engine.error);
                ( "profile",
                  Json.quote (Profile_io.to_string r.Engine.snapshot) );
              ],
            Some r.Engine.counters.Perf_model.cache_peak_instrs ))

let exec_sweep t job ~benches ~max_steps ~return_results =
  let unknown = List.filter (fun n -> Suite.find n = None) benches in
  if unknown <> [] then
    Protocol.error_reply ~kind:"invalid"
      ("unknown benchmark: " ^ String.concat ", " unknown)
  else begin
    let selected =
      match benches with
      | [] -> Suite.all
      | names -> List.filter_map Suite.find names
    in
    let names = List.map (fun (b : Spec.t) -> b.Spec.name) selected in
    let journal_id =
      match job.job_journal with
      | Some id -> id
      | None -> job.job_id
    in
    journal_append t (Journal.Sweep_begin { id = journal_id; benches = names });
    let max_steps = effective_max_steps t max_steps in
    let sweep, supervision =
      match t.config.checkpoint_dir with
      | Some dir ->
          (* With [snapshot_every] armed, each benchmark periodically
             publishes its mid-run state into the store; the matching
             journal ref lets a restarted daemon see that its orphaned
             sweep will resume mid-run rather than re-run. *)
          let on_snapshot_saved =
            if t.config.snapshot_every > 0 then
              Some
                (fun bench ->
                  journal_append t
                    (Journal.Snapshot_ref { id = journal_id; bench }))
            else None
          in
          Checkpoint.run_many_supervised ?max_steps
            ?deadline:t.config.deadline
            ~snapshot_every:t.config.snapshot_every ?on_snapshot_saved
            ~jobs:t.config.jobs ?progress:t.on_progress ?run_task:t.run_task
            ~dir selected
      | None ->
          Runner.run_many_supervised ?max_steps ?deadline:t.config.deadline
            ~jobs:t.config.jobs ?progress:t.on_progress ?run_task:t.run_task
            selected
    in
    journal_append t (Journal.Sweep_end { id = journal_id });
    let poisoned =
      List.map
        (fun ((b : Spec.t), reason) -> (b.Spec.name, reason))
        supervision.Runner.poisoned
    in
    let row name =
      match List.assoc_opt name poisoned with
      | Some reason ->
          Json.obj
            [
              ("bench", Json.quote name);
              ("status", Json.quote "poisoned");
              ("reason", Json.quote reason);
            ]
      | None -> (
          match
            List.find_opt
              (fun (d : Runner.data) ->
                String.equal d.Runner.bench.Spec.name name)
              sweep.Runner.data
          with
          | Some d ->
              Json.obj
                (("bench", Json.quote name)
                 :: ("status", Json.quote "ok")
                 ::
                 (if return_results then
                    [
                      ( "result",
                        Json.quote (Checkpoint.data_to_string d) );
                    ]
                  else []))
          | None -> (
              match
                List.find_opt
                  (fun { Runner.failed; _ } ->
                    String.equal failed.Spec.name name)
                  sweep.Runner.failures
              with
              | Some { Runner.error; _ } ->
                  Json.obj
                    [
                      ("bench", Json.quote name);
                      ("status", Json.quote "failed");
                      ("error", Json.quote (Error.to_string error));
                    ]
              | None ->
                  Json.obj
                    [
                      ("bench", Json.quote name);
                      ("status", Json.quote "missing");
                    ]))
    in
    Json.obj
      [
        ("ok", "true");
        ("op", Json.quote "sweep");
        ("benches", Json.arr (List.map row names));
        ( "poisoned",
          Json.arr (List.map (fun (n, _) -> Json.quote n) poisoned) );
        ( "corrupt_checkpoints",
          Json.arr
            (List.map (fun (n, _) -> Json.quote n) supervision.Runner.corrupt)
        );
      ]
  end

(* ---- the state machine ------------------------------------------------- *)

type offer = Reply of string | Enqueued of int

let status_reply t =
  refresh_gauges t;
  Json.obj
    [
      ("ok", "true");
      ("op", Json.quote "status");
      ("state", Json.quote (if t.draining then "draining" else "accepting"));
      ("queue", string_of_int (Queue.length t.queue));
      ("queue_limit", string_of_int t.config.queue_limit);
      ("queue_peak", string_of_int t.peak);
      ("max_frame", string_of_int t.config.max_frame);
      ("jobs", string_of_int t.config.jobs);
      ("served", string_of_int (cval t "serve.replies"));
      ("executed", string_of_int (cval t "serve.executed"));
      ("invalid", string_of_int (cval t "serve.invalid"));
      ("overloaded", string_of_int (cval t "serve.overloaded"));
      ("disconnects", string_of_int (cval t "serve.disconnects"));
      ("dropped", string_of_int (cval t "serve.dropped"));
      ("recovered", string_of_int (cval t "serve.recovered"));
      ("journal_records", string_of_int (cval t "serve.journal.records"));
      ("journal_torn", string_of_int (cval t "serve.journal.torn"));
      ("cache_entries", string_of_int (Warm_cache.entries t.warm));
      ("cache_used", string_of_int (Warm_cache.used t.warm));
      ("cache_capacity", string_of_int (Warm_cache.capacity t.warm));
      ("cache_hits", string_of_int (Warm_cache.hits t.warm));
      ("cache_misses", string_of_int (Warm_cache.misses t.warm));
      ("cache_evictions", string_of_int (Warm_cache.evictions t.warm));
    ]

let metrics_reply t =
  refresh_gauges t;
  (* Mirror the warm cache's own counts into the registry so the
     exposition is complete without double counting. *)
  let sync name v =
    let cur = cval t name in
    if v > cur then Metrics.add (c t name) (v - cur)
  in
  sync "serve.cache.hits" (Warm_cache.hits t.warm);
  sync "serve.cache.misses" (Warm_cache.misses t.warm);
  sync "serve.cache.evictions" (Warm_cache.evictions t.warm);
  Json.obj
    [
      ("ok", "true");
      ("op", Json.quote "metrics");
      ("content_type", Json.quote Openmetrics.content_type);
      ("body", Json.quote (Openmetrics.render t.reg));
    ]

let reply t payload =
  incr t "serve.replies";
  Reply payload

let drain t =
  if not t.draining then begin
    t.draining <- true;
    incr t "serve.drains"
  end

let offer t ~client payload =
  match Protocol.parse_request payload with
  | Error msg ->
      incr t "serve.invalid";
      reply t (Protocol.error_reply ~kind:"invalid" msg)
  | Ok req -> (
      incr t "serve.requests";
      match req with
      | Protocol.Ping -> reply t (Protocol.ping_reply ~ready:(not t.draining))
      | Protocol.Status -> reply t (status_reply t)
      | Protocol.Metrics -> reply t (metrics_reply t)
      | Protocol.Drain ->
          drain t;
          reply t
            (Json.obj
               [
                 ("ok", "true");
                 ("op", Json.quote "drain");
                 ("state", Json.quote "draining");
                 ("queue", string_of_int (Queue.length t.queue));
               ])
      | Protocol.Translate _ | Protocol.Run _ | Protocol.Sweep _ ->
          if t.draining then begin
            incr t "serve.rejected_draining";
            reply t (Protocol.draining_reply ())
          end
          else if Queue.length t.queue >= t.config.queue_limit then begin
            incr t "serve.overloaded";
            reply t
              (Protocol.overloaded_reply ~queue:(Queue.length t.queue)
                 ~limit:t.config.queue_limit)
          end
          else begin
            let id = t.next_id in
            t.next_id <- id + 1;
            Queue.add
              {
                job_id = id;
                job_client = Some client;
                job_req = req;
                job_journal = None;
              }
              t.queue;
            t.peak <- max t.peak (Queue.length t.queue);
            refresh_gauges t;
            Enqueued id
          end)

type stepped = {
  job : int;
  client : int option;
  reply : string;
  delivered : bool;
}

let execute t job =
  t.now <- t.now + 1;
  incr t "serve.executed";
  let cached_or run req =
    match Protocol.cache_key req with
    | None -> fst (run ())
    | Some key -> (
        match Warm_cache.find t.warm ~now:t.now key with
        | Some hit -> hit
        | None ->
            let payload, size = run () in
            (match size with
            | Some size -> Warm_cache.add t.warm ~now:t.now ~key ~size payload
            | None -> ());
            payload)
  in
  match job.job_req with
  | Protocol.Run { workload; threshold; max_steps } ->
      incr t "serve.runs";
      cached_or
        (fun () -> exec_run t ~workload ~threshold ~max_steps)
        job.job_req
  | Protocol.Translate { program; threshold; seed; max_steps } ->
      incr t "serve.translates";
      cached_or
        (fun () -> exec_translate t ~program ~threshold ~seed ~max_steps)
        job.job_req
  | Protocol.Sweep { benches; max_steps; return_results } ->
      incr t "serve.sweeps";
      exec_sweep t job ~benches ~max_steps ~return_results
  | Protocol.Ping | Protocol.Status | Protocol.Metrics | Protocol.Drain ->
      (* Unreachable: cheap ops are never enqueued. *)
      Protocol.error_reply ~kind:"internal" "cheap op in the queue"

let step t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some job ->
      let payload = execute t job in
      incr t "serve.replies";
      let delivered =
        match job.job_client with
        | None -> false
        | Some client -> not (Hashtbl.mem t.dead client)
      in
      if not delivered then incr t "serve.dropped";
      refresh_gauges t;
      Some { job = job.job_id; client = job.job_client; reply = payload; delivered }

let disconnect t ~client =
  if not (Hashtbl.mem t.dead client) then begin
    Hashtbl.replace t.dead client ();
    incr t "serve.disconnects"
  end

let draining t = t.draining
let idle t = Queue.is_empty t.queue
let pending t = Queue.length t.queue
let queue_peak t = t.peak
let recovered t = t.recovered
let recovered_snapshots t = t.recovered_snapshots
let metrics t = t.reg

let close t =
  (match t.journal with
  | Some j ->
      if t.draining && idle t then Journal.append j Journal.Drained;
      Journal.close j
  | None -> ());
  refresh_gauges t
