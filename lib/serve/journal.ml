let magic = "TPDBT-JRNL 1"

(* Table-driven CRC32 (IEEE 802.3, reflected) — the same polynomial as
   the checkpoint store, duplicated locally so the journal stays a
   leaf module with no dependency on the experiments layer's
   internals. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor (Int32.shift_right_logical !c 1) 0xEDB88320l
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc_hex s = Printf.sprintf "%08lx" (crc32 s)

type record =
  | Sweep_begin of { id : int; benches : string list }
  | Snapshot_ref of { id : int; bench : string }
  | Sweep_end of { id : int }
  | Drained

type recovery = {
  records : int;
  torn : int;
  inflight : (int * string list) list;
  snapshot_refs : (int * string) list;
}

type t = { oc : out_channel }

let record_to_string = function
  | Sweep_begin { id; benches } ->
      Printf.sprintf "sweep_begin %d %d%s" id (List.length benches)
        (String.concat "" (List.map (fun b -> " " ^ b) benches))
  | Snapshot_ref { id; bench } -> Printf.sprintf "snapshot_ref %d %s" id bench
  | Sweep_end { id } -> Printf.sprintf "sweep_end %d" id
  | Drained -> "drained"

let record_of_string s =
  match String.split_on_char ' ' s with
  | "sweep_begin" :: id :: n :: benches -> (
      match (int_of_string_opt id, int_of_string_opt n) with
      | Some id, Some n
        when n = List.length benches
             && List.for_all (fun b -> b <> "") benches ->
          Some (Sweep_begin { id; benches })
      | _ -> None)
  | [ "snapshot_ref"; id; bench ] when bench <> "" ->
      Option.map (fun id -> Snapshot_ref { id; bench }) (int_of_string_opt id)
  | [ "sweep_end"; id ] ->
      Option.map (fun id -> Sweep_end { id }) (int_of_string_opt id)
  | [ "drained" ] -> Some Drained
  | _ -> None

let frame_record r =
  let payload = record_to_string r in
  Printf.sprintf "R %s %d %s\n" (crc_hex payload) (String.length payload)
    payload

(* One framed line -> record, or None on any damage. *)
let parse_line line =
  match String.index_opt line ' ' with
  | Some 1 when line.[0] = 'R' -> (
      match String.split_on_char ' ' line with
      | "R" :: crc :: len :: rest -> (
          let payload = String.concat " " rest in
          match int_of_string_opt len with
          | Some n
            when n = String.length payload
                 && String.equal (crc_hex payload) crc ->
              record_of_string payload
          | _ -> None)
      | _ -> None)
  | _ -> None

let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Scan the file text: return (good_prefix_length, records, inflight).
   Stops at the first damaged line; everything after it is torn. *)
let scan text =
  let header_len = String.length magic + 1 in
  if
    String.length text < header_len
    || not (String.equal (String.sub text 0 header_len) (magic ^ "\n"))
  then None
  else begin
    let inflight = Hashtbl.create 8 in
    let order = ref [] in
    let refs = ref [] in
    let records = ref 0 in
    let pos = ref header_len in
    let good = ref header_len in
    let damaged = ref false in
    while (not !damaged) && !pos < String.length text do
      match String.index_from_opt text !pos '\n' with
      | None -> damaged := true (* torn final append: no newline *)
      | Some i -> (
          let line = String.sub text !pos (i - !pos) in
          match parse_line line with
          | None -> damaged := true
          | Some r ->
              incr records;
              (match r with
              | Sweep_begin { id; benches } ->
                  Hashtbl.replace inflight id benches;
                  order := id :: !order
              | Snapshot_ref { id; bench } -> refs := (id, bench) :: !refs
              | Sweep_end { id } ->
                  Hashtbl.remove inflight id;
                  refs := List.filter (fun (i, _) -> i <> id) !refs
              | Drained ->
                  Hashtbl.reset inflight;
                  order := [];
                  refs := []);
              pos := i + 1;
              good := !pos)
    done;
    let inflight_list =
      List.rev !order
      |> List.filter_map (fun id ->
             match Hashtbl.find_opt inflight id with
             | Some benches ->
                 (* A re-begun id keeps one entry: drop later dups. *)
                 Hashtbl.remove inflight id;
                 Some (id, benches)
             | None -> None)
    in
    (* Surviving refs point at mid-run snapshots of still-in-flight
       sweeps; a bench may appear several times (one ref per snapshot
       saved) — keep the set, in first-ref order. *)
    let snapshot_refs =
      List.fold_left
        (fun acc (id, bench) ->
          if List.mem (id, bench) acc then acc else (id, bench) :: acc)
        []
        (List.rev !refs)
      |> List.rev
    in
    Some (!good, !records, inflight_list, snapshot_refs, !damaged)
  end

let open_ ~path =
  let fresh () =
    let oc = open_out_bin path in
    output_string oc (magic ^ "\n");
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc);
    fsync_dir path;
    ({ oc }, { records = 0; torn = 0; inflight = []; snapshot_refs = [] })
  in
  if not (Sys.file_exists path) then fresh ()
  else
    match scan (read_all path) with
    | None ->
        (* Unrecognised header: the file is not ours (or is damaged
           beyond its first line).  Crash-only: start over. *)
        let t, r = fresh () in
        (t, { r with torn = 1 })
    | Some (good, records, inflight, snapshot_refs, damaged) ->
        if damaged then Unix.truncate path good;
        let oc =
          open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
        in
        ( { oc },
          {
            records;
            torn = (if damaged then 1 else 0);
            inflight;
            snapshot_refs;
          } )

let append t r =
  output_string t.oc (frame_record r);
  flush t.oc;
  Unix.fsync (Unix.descr_of_out_channel t.oc)

let close t = close_out t.oc
