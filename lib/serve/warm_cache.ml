module Code_cache = Tpdbt_dbt.Code_cache

type t = {
  cache : Code_cache.t;  (** the accounting/eviction engine *)
  capacity : int;
  by_key : (string, int) Hashtbl.t;
  by_id : (int, string * string) Hashtbl.t;  (** id -> (key, reply) *)
  mutable next_id : int;
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Warm_cache.create: capacity <= 0";
  {
    cache = Code_cache.create ~capacity ~policy:Code_cache.Lru ();
    capacity;
    by_key = Hashtbl.create 64;
    by_id = Hashtbl.create 64;
    next_id = 0;
    hits = 0;
    misses = 0;
    evicted = 0;
  }

let drop t (victim : Code_cache.entry) =
  match Hashtbl.find_opt t.by_id victim.Code_cache.id with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.by_id victim.Code_cache.id;
      Hashtbl.remove t.by_key key;
      t.evicted <- t.evicted + 1

let find t ~now key =
  match Hashtbl.find_opt t.by_key key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some id ->
      t.hits <- t.hits + 1;
      Code_cache.touch t.cache ~now Code_cache.Block id;
      Option.map snd (Hashtbl.find_opt t.by_id id)

let add t ~now ~key ~size reply =
  (match Hashtbl.find_opt t.by_key key with
  | Some old_id ->
      Code_cache.remove t.cache Code_cache.Block old_id;
      Hashtbl.remove t.by_id old_id;
      Hashtbl.remove t.by_key key
  | None -> ());
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.by_key key id;
  Hashtbl.replace t.by_id id (key, reply);
  let victims =
    Code_cache.insert t.cache ~now ~ekind:Code_cache.Block ~id
      ~size:(max 1 size)
  in
  List.iter (drop t) victims

let entries t = Hashtbl.length t.by_id
let used t = Code_cache.used t.cache
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evicted
