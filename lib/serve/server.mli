(** The serving state machine behind [tpdbt serve].

    This module is the daemon with the sockets peeled off: it owns
    admission control, request execution, the warm cache, the session
    journal, drain, and the [serve.*] telemetry — everything that must
    be correct under fault injection — while {!Daemon} contributes only
    I/O (connections, timeouts, signals).  The split is what makes the
    serving-failure surface testable: the chaos harness
    ({!Chaos_serve}) drives this state machine directly with seeded
    faults and byte-diffs the results, no sockets involved.

    {2 Admission and backpressure}

    Expensive requests ([translate]/[run]/[sweep]) pass through a
    bounded queue of [queue_limit] jobs.  A request arriving at a full
    queue is answered [overloaded] {e immediately} — the daemon never
    buffers unboundedly, so queue depth (the RSS proxy) is capped by
    configuration, not by client behaviour.  Probes ([ping]/[status]/
    [metrics]) and [drain] are answered inline and are never queued,
    so the daemon stays observable under overload.

    {2 Execution}

    One queued job executes per {!step}, on the calling domain; sweeps
    fan out over the existing {!Tpdbt_parallel.Pool} via the
    supervised, checkpointed runner, so a serving sweep inherits every
    batch-robustness property: per-task deadlines, bounded retry,
    breakers, worker-crash recovery, crash-consistent checkpoints, and
    byte-identical results at every job count.

    {2 Recovery}

    Admitted sweeps are journalled ({!Journal}) before they run and
    marked complete after their results are checkpointed.  A server
    created over the journal of a killed predecessor re-enqueues every
    in-flight sweep as an {e orphan} job (no client to answer); its
    finished benchmarks restore from checkpoints, benchmarks with a
    journalled mid-run snapshot ({!Journal.Snapshot_ref}) resume from
    that exact guest instruction, and the rest re-run — results
    byte-identical to a never-killed run. *)

type config = {
  queue_limit : int;  (** admission bound (default 8) *)
  max_frame : int;  (** per-connection frame bound, advertised in status *)
  jobs : int;  (** worker domains for sweep execution (default 1) *)
  deadline : int option;
      (** per-run guest-step deadline (supervisor budget) applied to
          every engine run the server performs *)
  max_steps : int option;
      (** server-wide step-budget cap; a request's own [max_steps]
          takes precedence when smaller *)
  warm_capacity : int;
      (** warm-cache budget in translated guest instructions *)
  checkpoint_dir : string option;
      (** sweep checkpoint store; also the recovery substrate *)
  journal_path : string option;  (** session journal; [None] = volatile *)
  snapshot_every : int;
      (** with a checkpoint dir: every N guest instructions, each
          sweep benchmark publishes its mid-run state into the store
          (and a {!Journal.Snapshot_ref} into the journal), so a
          killed daemon's orphaned sweeps {e resume} mid-run instead
          of re-running from scratch; [0] (default) disables *)
}

val default_config : config
(** queue limit 8, 4 MiB frames, 1 job, no deadline, no step cap,
    1M-instruction warm cache, no checkpoint dir, no journal, no
    mid-run snapshots. *)

type t

val create :
  ?run_task:
    (task:int ->
    attempt:int ->
    Tpdbt_workloads.Spec.t ->
    (Tpdbt_experiments.Runner.data, Tpdbt_dbt.Error.t) result) ->
  ?on_progress:(string -> Tpdbt_experiments.Runner.status -> unit) ->
  config ->
  t
(** [run_task] and [on_progress] are forwarded to the supervised sweep
    runner — the chaos harness's fault-injection points, and the
    daemon's I/O pump.  Opening a journal with in-flight sweeps
    re-enqueues them as orphan jobs (run them with {!step}). *)

type offer =
  | Reply of string  (** answered inline (probe, rejection, drain ack) *)
  | Enqueued of int  (** admitted; the reply comes from a later {!step} *)

val offer : t -> client:int -> string -> offer
(** Present one received frame payload.  Never raises: malformed JSON,
    schema violations and unknown ops all come back as [invalid]
    replies; a full queue as [overloaded]; a draining server rejects
    new expensive work as [draining]. *)

type stepped = {
  job : int;
  client : int option;  (** [None] for journal-recovered orphans *)
  reply : string;
  delivered : bool;
      (** [false] when the client disconnected while queued/running —
          the reply was dropped, not sent *)
}

val step : t -> stepped option
(** Execute the oldest queued job, if any.  Requests that fail inside
    the engine still produce a reply ([ok:true] with the typed error
    as data, or an [invalid] reply for semantic rejections like an
    unknown benchmark) — execution failures never kill the server. *)

val disconnect : t -> client:int -> unit
(** The client vanished: its queued/running jobs still execute (sweep
    results are checkpointed — the work is not wasted), but their
    replies are dropped. *)

val drain : t -> unit
(** Stop admitting expensive work.  Idempotent.  Queued jobs still
    execute; call {!step} until {!idle}, then {!close}. *)

val draining : t -> bool

val idle : t -> bool
(** Nothing queued. *)

val pending : t -> int
(** Queue depth. *)

val queue_peak : t -> int

val recovered : t -> (int * string list) list
(** Journal-recovered in-flight sweeps re-enqueued at creation. *)

val recovered_snapshots : t -> (int * string) list
(** Journal-recovered mid-run snapshot refs of those sweeps: which
    benchmarks the checkpoint store can resume at guest-instruction
    granularity rather than re-run. *)

val metrics : t -> Tpdbt_telemetry.Metrics.t
(** The [serve.*] registry (gauges refreshed on read via {!offer}'s
    [status]/[metrics] ops; counters always live). *)

val status_reply : t -> string
(** The [status] reply body — exposed for the daemon's logs/tests. *)

val close : t -> unit
(** Flush and close the journal; a drained idle server journals
    [Drained] first so a restart recovers nothing. *)
