(** Warm translation cache shared across daemon requests.

    A [translate] or [run] request is a pure function of its
    parameters (fixed seeds, deterministic engine), so its reply can be
    kept warm and served byte-identically without re-executing — the
    persistent-service payoff the DCG-simulation paper motivates: the
    second client asking for the same translation gets it from the
    warm cache, not from a cold engine.

    The cache is {e bounded} and reuses {!Tpdbt_dbt.Code_cache} as its
    accounting and eviction engine: each cached reply is charged the
    run's translated footprint (peak code-cache occupancy in translated
    guest instructions) against a configurable capacity, with
    deterministic LRU eviction — the same discipline, and the same
    determinism guarantees, as the in-engine cache.  A warm hit is
    byte-identical to a cold miss by construction (the stored reply
    {e is} the rendered reply), so caching is invisible to clients and
    to the chaos harness's byte-diffs. *)

type t

val create : capacity:int -> t
(** [capacity] in translated guest instructions.
    @raise Invalid_argument if [capacity <= 0]. *)

val find : t -> now:int -> string -> string option
(** [find t ~now key] returns the cached reply and refreshes its LRU
    stamp, counting a hit; [None] counts a miss.  [now] is any
    monotonic request counter. *)

val add : t -> now:int -> key:string -> size:int -> string -> unit
(** Cache [reply] under [key], charged [max 1 size] translated
    instructions, evicting LRU victims as needed.  Re-adding a key
    replaces its entry. *)

val entries : t -> int
val used : t -> int
val capacity : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
