(** Crash-only append-only session journal for the serving daemon.

    The daemon journals the lifecycle of every stateful request (today:
    sweeps) so that a killed process can recover its in-flight work on
    restart.  The discipline is the {!Tpdbt_experiments.Checkpoint} v3
    one, adapted to appends: every record line carries a CRC32 and byte
    length over its payload, each append is flushed and fsynced before
    it is acknowledged, and the file's containing directory is fsynced
    at creation so the journal itself cannot vanish in a crash.

    Recovery is {e crash-only}: opening an existing journal scans
    records in order and stops at the first damaged one — a torn final
    append, a truncated file, a bit flip — truncating the file back to
    the last intact record.  Whatever survives is trusted; everything
    after the damage is treated as never written (the work it described
    re-runs from checkpoints, which is safe because sweep execution is
    idempotent).  A sweep with a [Sweep_begin] but no [Sweep_end] in
    the surviving prefix is reported as in-flight for the server to
    re-enqueue. *)

type record =
  | Sweep_begin of { id : int; benches : string list }
      (** a sweep request was admitted; [benches] in input order *)
  | Snapshot_ref of { id : int; bench : string }
      (** sweep [id] published a mid-run snapshot of [bench] into the
          checkpoint store — a breadcrumb telling a recovering daemon
          that the orphaned sweep can {e resume} that benchmark from
          mid-run state instead of re-running it *)
  | Sweep_end of { id : int }  (** its results are fully checkpointed *)
  | Drained  (** the daemon shut down gracefully; nothing in flight *)

type recovery = {
  records : int;  (** intact records recovered *)
  torn : int;  (** damaged records truncated away (0 or 1 region) *)
  inflight : (int * string list) list;
      (** sweeps begun but not ended, in begin order *)
  snapshot_refs : (int * string) list;
      (** mid-run snapshot refs of still-in-flight sweeps (ended
          sweeps' refs are dropped), deduplicated, first-ref order *)
}

type t

val open_ : path:string -> t * recovery
(** Open (creating if absent) the journal at [path] and recover.  The
    returned handle is positioned for appends past the last intact
    record.
    @raise Sys_error on I/O failure. *)

val append : t -> record -> unit
(** Durably append one record: write, flush, fsync. *)

val close : t -> unit

val record_to_string : record -> string
val record_of_string : string -> record option
(** The payload encoding, exposed for tests.  [record_of_string]
    rejects anything {!record_to_string} does not produce. *)
