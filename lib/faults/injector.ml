type t = {
  mutable pending : Fault.arm list;  (* sorted by step *)
  mutable fired_rev : Fault.shot list;
}

let create plan = { pending = Plan.arms plan; fired_rev = [] }

let due t ~step =
  match t.pending with [] -> false | arm :: _ -> arm.Fault.step <= step

let take t ~step kind =
  let rec split acc = function
    | [] -> None
    | arm :: _ when arm.Fault.step > step -> None
    | arm :: rest when arm.Fault.kind = kind ->
        t.pending <- List.rev_append acc rest;
        Some arm
    | arm :: rest -> split (arm :: acc) rest
  in
  split [] t.pending

let record t arm ~fired_step ~target =
  t.fired_rev <- { Fault.arm; fired_step; target } :: t.fired_rev

let fired t = List.rev t.fired_rev

let report t =
  { Fault.fired = List.rev t.fired_rev; unfired = t.pending }

let cursor t = (t.pending, List.rev t.fired_rev)

let of_cursor ~pending ~fired =
  { pending; fired_rev = List.rev fired }
