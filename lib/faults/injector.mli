(** Runtime state of a fault plan during one engine run.

    The engine polls {!due} once per dispatched block (a single integer
    compare against the earliest pending arm), and at each concrete
    injection site calls {!take} for the site's kind; a consumed arm is
    recorded with {!record} once the victim is known.  Arms left
    pending at end of run surface in {!report} as unfired. *)

type t

val create : Plan.t -> t
val due : t -> step:int -> bool
(** Is any pending arm's step [<= step]?  O(1). *)

val take : t -> step:int -> Fault.kind -> Fault.arm option
(** Consume the earliest pending arm of [kind] with [arm.step <= step],
    if any.  The caller must follow up with {!record}. *)

val record : t -> Fault.arm -> fired_step:int -> target:int -> unit
(** Log a consumed arm as fired ([target = -1] when it found no
    victim). *)

val fired : t -> Fault.shot list
(** Shots so far, in firing order. *)

val report : t -> Fault.report

val cursor : t -> Fault.arm list * Fault.shot list
(** [(pending, fired)] — pending arms in armed order and shots in
    firing order: the injector's complete progress through its plan,
    for mid-run snapshots. *)

val of_cursor : pending:Fault.arm list -> fired:Fault.shot list -> t
(** Rebuild an injector mid-plan from {!cursor} output. *)
