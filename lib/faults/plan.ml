module Prng = Tpdbt_vm.Prng

type t = { seed : int64; arms : Fault.arm list }

let sort_arms arms =
  List.stable_sort (fun a b -> compare a.Fault.step b.Fault.step) arms

let make ?(kinds = Fault.all_kinds) ?(count = 4) ~horizon ~seed () =
  if kinds = [] then invalid_arg "Plan.make: empty kind list";
  if count < 0 then invalid_arg "Plan.make: negative count";
  if horizon <= 0 then invalid_arg "Plan.make: horizon must be positive";
  let prng = Prng.create ~seed in
  let kinds = Array.of_list kinds in
  let arms =
    List.init count (fun _ ->
        let step = Prng.below prng horizon in
        let kind = kinds.(Prng.below prng (Array.length kinds)) in
        let salt = Prng.next_int64 prng in
        { Fault.step; kind; salt })
  in
  { seed; arms = sort_arms arms }

let of_arms ~seed arms = { seed; arms = sort_arms arms }
let seed t = t.seed
let arms t = t.arms
let count t = List.length t.arms

let pp ppf t =
  Format.fprintf ppf "@[<h>plan seed=%Ld:" t.seed;
  List.iter (fun a -> Format.fprintf ppf " %a" Fault.pp_arm a) t.arms;
  Format.fprintf ppf "@]"
