(** Fault kinds and the record of what a fault campaign did.

    A fault {e arm} is a latent failure scheduled by a {!Plan}: it names
    the kind of failure, the guest-instruction step from which it is
    armed, and a salt used to pick the victim deterministically.  The
    arm fires at the {e first} matching injection site the engine
    reaches once its step counter passes [step] — keying the plan off
    the logical clock rather than off call counts makes a plan's effect
    a pure function of (program, input seed, plan), independent of how
    the engine interleaves its internal work.

    A fired arm becomes a {e shot}; arms whose site never came up (e.g.
    a retranslation failure armed after the last optimisation round)
    stay unfired and are reported as such. *)

type kind =
  | Retranslate_fail
      (** optimised retranslation of a region fails; the engine must
          retry (bounded, with a decayed pool trigger) or give up *)
  | Block_corrupt
      (** a translated block's code is corrupted; the engine must throw
          the translation away and, if the block sits in a region,
          dissolve that region back to cold profiling code *)
  | Region_abort
      (** region formation aborts mid-way; the half-built region's
          members return to cold profiling code *)
  | Guest_trap
      (** the current guest instruction is poisoned, raising an
          illegal-instruction trap — the engine must surface it as a
          typed error, never as an exception *)
  | Silent_corruption
      (** a resident optimised region's translated code is corrupted
          {e without} trapping: a real translator would keep executing
          it and silently produce wrong results.  Only the
          shadow-execution oracle can catch it — a campaign trial where
          corrupted code ran and the oracle never flagged it is
          classified [uncaught] *)
  | Cache_thrash
      (** the whole code cache is flushed at once — every translation
          and region must be rebuilt (the pathological pressure case);
          guest behaviour must be unchanged *)

val all_kinds : kind list
(** In declaration order. *)

val recoverable_kinds : kind list
(** The kinds the engine survives with unchanged guest behaviour and
    no oracle required: [Retranslate_fail], [Block_corrupt],
    [Region_abort] and [Cache_thrash].  [Guest_trap] always ends the
    run with a typed error; [Silent_corruption] is only caught when
    the shadow oracle is on. *)

val kind_name : kind -> string
(** Stable snake_case identifier, e.g. ["retranslate_fail"]. *)

val kind_of_name : string -> kind option

type arm = { step : int; kind : kind; salt : int64 }
(** Fire at the first [kind]-site reached once the guest step counter
    is at least [step]; [salt] selects the victim (block, region). *)

type shot = { arm : arm; fired_step : int; target : int }
(** [target] is the victim's id — a block id ([Block_corrupt]), region
    id ([Retranslate_fail], [Region_abort], [Silent_corruption]), pc
    ([Guest_trap]) or the number of entries flushed ([Cache_thrash]);
    [-1] when the arm fired but found no victim (e.g. corrupting a
    cache that holds no translations yet). *)

type report = { fired : shot list; unfired : arm list }
(** [fired] in firing order; [unfired] in armed order. *)

val injected : report -> int
(** Number of shots that hit a victim ([target >= 0]). *)

val pp_arm : Format.formatter -> arm -> unit
val pp_shot : Format.formatter -> shot -> unit
val pp_report : Format.formatter -> report -> unit
