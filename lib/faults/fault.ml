type kind =
  | Retranslate_fail
  | Block_corrupt
  | Region_abort
  | Guest_trap
  | Silent_corruption
  | Cache_thrash

let all_kinds =
  [
    Retranslate_fail;
    Block_corrupt;
    Region_abort;
    Guest_trap;
    Silent_corruption;
    Cache_thrash;
  ]

let recoverable_kinds =
  [ Retranslate_fail; Block_corrupt; Region_abort; Cache_thrash ]

let kind_name = function
  | Retranslate_fail -> "retranslate_fail"
  | Block_corrupt -> "block_corrupt"
  | Region_abort -> "region_abort"
  | Guest_trap -> "guest_trap"
  | Silent_corruption -> "silent_corruption"
  | Cache_thrash -> "cache_thrash"

let kind_of_name = function
  | "retranslate_fail" -> Some Retranslate_fail
  | "block_corrupt" -> Some Block_corrupt
  | "region_abort" -> Some Region_abort
  | "guest_trap" -> Some Guest_trap
  | "silent_corruption" -> Some Silent_corruption
  | "cache_thrash" -> Some Cache_thrash
  | _ -> None

type arm = { step : int; kind : kind; salt : int64 }
type shot = { arm : arm; fired_step : int; target : int }
type report = { fired : shot list; unfired : arm list }

let injected report =
  List.length (List.filter (fun s -> s.target >= 0) report.fired)

let pp_arm ppf arm =
  Format.fprintf ppf "@[<h>%s@@%d@]" (kind_name arm.kind) arm.step

let pp_shot ppf shot =
  Format.fprintf ppf "@[<h>%s armed@%d fired@%d target %d@]"
    (kind_name shot.arm.kind) shot.arm.step shot.fired_step shot.target

let pp_report ppf report =
  Format.fprintf ppf "@[<v>fired %d (%d with a victim):@,"
    (List.length report.fired) (injected report);
  List.iter (fun s -> Format.fprintf ppf "  %a@," pp_shot s) report.fired;
  Format.fprintf ppf "unfired %d:@," (List.length report.unfired);
  List.iter (fun a -> Format.fprintf ppf "  %a@," pp_arm a) report.unfired;
  Format.fprintf ppf "@]"
