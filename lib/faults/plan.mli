(** Seeded, deterministic fault plans.

    A plan is a finite list of {!Fault.arm}s drawn from a SplitMix64
    stream: the arm steps are uniform over [0, horizon), kinds are
    uniform over the requested kind set, and each arm carries a salt
    for victim selection.  The same [(seed, kinds, count, horizon)]
    always yields the same plan, so a faulty run is exactly as
    reproducible as a clean one. *)

type t

val make :
  ?kinds:Fault.kind list -> ?count:int -> horizon:int -> seed:int64 -> unit -> t
(** [kinds] defaults to {!Fault.all_kinds} (duplicates allowed — listing
    a kind twice doubles its weight); [count] defaults to 4; [horizon]
    is the step range the arms are drawn from, typically the clean
    run's instruction count.
    @raise Invalid_argument if [kinds] is empty, [count < 0] or
    [horizon <= 0]. *)

val of_arms : seed:int64 -> Fault.arm list -> t
(** A hand-written plan (tests, targeted campaigns).  Arms are sorted
    by step; [seed] only labels the plan. *)

val seed : t -> int64
val arms : t -> Fault.arm list
(** Sorted by ascending [step]. *)

val count : t -> int
val pp : Format.formatter -> t -> unit
