(** Two-pass assembler: G32 assembly text -> {!Program.t}.

    Pass 1 assigns instruction indices to labels; pass 2 resolves
    symbolic branch targets.  The entry point is the label named by
    [.entry] (default: the first instruction). *)

val assemble : string -> (Program.t, string) result
(** Assemble a full source string. *)

exception Assembly_error of string
(** An assembly error, carrying {!assemble}'s error message.  Typed —
    rather than a bare [Failure] — so callers can match it without
    string-matching, and registered with {!Printexc} so an escaped
    raise still prints the message. *)

val assemble_exn : string -> Program.t
(** @raise Assembly_error on any assembly error.  Untrusted source
    should go through {!assemble} instead. *)
