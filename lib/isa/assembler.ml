let ( let* ) = Result.bind

module String_map = Map.Make (String)

(* Pass 1: map labels to instruction indices; collect instruction
   statements (with their source lines) and directives. *)
let layout stmts =
  let rec go stmts pc labels entry data rev_ins =
    match stmts with
    | [] -> Ok (labels, entry, List.rev data, List.rev rev_ins)
    | { Asm_parser.stmt; line } :: rest -> (
        match stmt with
        | Asm_parser.Label_def name ->
            if String_map.mem name labels then
              Error (Printf.sprintf "line %d: duplicate label %S" line name)
            else go rest pc (String_map.add name pc labels) entry data rev_ins
        | Asm_parser.Entry name -> (
            match entry with
            | Some _ -> Error (Printf.sprintf "line %d: duplicate .entry" line)
            | None -> go rest pc labels (Some name) data rev_ins)
        | Asm_parser.Data (addr, value) ->
            go rest pc labels entry ((addr, value) :: data) rev_ins
        | Asm_parser.Ins pseudo ->
            go rest (pc + 1) labels entry data ((pseudo, line) :: rev_ins))
  in
  go stmts 0 String_map.empty None [] []

let resolve labels line = function
  | Asm_parser.Addr a -> Ok a
  | Asm_parser.Name name -> (
      match String_map.find_opt name labels with
      | Some pc -> Ok pc
      | None -> Error (Printf.sprintf "line %d: undefined label %S" line name))

let lower labels (pseudo, line) =
  match pseudo with
  | Asm_parser.Movi (rd, imm) -> Ok (Instr.Movi (rd, imm))
  | Asm_parser.Mov (rd, rs) -> Ok (Instr.Mov (rd, rs))
  | Asm_parser.Binop (op, rd, rs1, rs2) -> Ok (Instr.Binop (op, rd, rs1, rs2))
  | Asm_parser.Binopi (op, rd, rs, imm) -> Ok (Instr.Binopi (op, rd, rs, imm))
  | Asm_parser.Load (rd, base, off) -> Ok (Instr.Load (rd, base, off))
  | Asm_parser.Store (rsrc, base, off) -> Ok (Instr.Store (rsrc, base, off))
  | Asm_parser.Br (c, rs1, rs2, target) ->
      let* addr = resolve labels line target in
      Ok (Instr.Br (c, rs1, rs2, addr))
  | Asm_parser.Jmp target ->
      let* addr = resolve labels line target in
      Ok (Instr.Jmp addr)
  | Asm_parser.Call target ->
      let* addr = resolve labels line target in
      Ok (Instr.Call addr)
  | Asm_parser.Ret -> Ok Instr.Ret
  | Asm_parser.Rnd (rd, bound) ->
      if bound <= 0 then
        Error (Printf.sprintf "line %d: rnd bound must be positive" line)
      else Ok (Instr.Rnd (rd, bound))
  | Asm_parser.Out rs -> Ok (Instr.Out rs)
  | Asm_parser.Halt -> Ok Instr.Halt
  | Asm_parser.Nop -> Ok Instr.Nop

let assemble src =
  let* tokens = Lexer.tokenize src in
  let* stmts = Asm_parser.parse tokens in
  let* labels, entry_label, data_init, pseudo_instrs = layout stmts in
  let rec lower_all acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
        let* instr = lower labels item in
        lower_all (instr :: acc) rest
  in
  let* code = lower_all [] pseudo_instrs in
  let* entry =
    match entry_label with
    | None -> Ok 0
    | Some name -> (
        match String_map.find_opt name labels with
        | Some pc -> Ok pc
        | None -> Error (Printf.sprintf ".entry: undefined label %S" name))
  in
  match Program.make ~entry ~data_init (Array.of_list code) with
  | p -> Ok p
  | exception Invalid_argument msg -> Error msg

exception Assembly_error of string

let () =
  Printexc.register_printer (function
    | Assembly_error msg -> Some (Printf.sprintf "Assembler.Assembly_error %S" msg)
    | _ -> None)

let assemble_exn src =
  match assemble src with Ok p -> p | Error msg -> raise (Assembly_error msg)
